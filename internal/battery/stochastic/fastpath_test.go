package stochastic_test

import (
	"math"
	"testing"

	"battsched/internal/battery"
	"battsched/internal/battery/stochastic"
	"battsched/internal/profile"
)

// fastpathProfiles are the load shapes the accuracy gates run on: the bench
// profile (burst / plateau / near-idle tail with non-integral durations) and
// constant loads across the curve sweep's range.
func fastpathProfiles() map[string]*profile.Profile {
	bench := profile.New()
	bench.Append(33.4, 1.2)
	bench.Append(21.7, 0.4)
	bench.Append(5.1, 0.01)
	return map[string]*profile.Profile{
		"bench":        bench,
		"constant-0.2": profile.Constant(0.2, 60*3600),
		"constant-1.0": profile.Constant(1.0, 60*3600),
		"constant-2.0": profile.Constant(2.0, 60*3600),
	}
}

func relDiff(a, b float64) float64 {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return 0
	}
	return math.Abs(a-b) / scale
}

// TestFastPathMatchesSteppedDefault: with the default ExpectedStep the
// analytic path reproduces the historical 1 s-substep expected-value
// recursion; the only difference is closed-form versus iterated float
// rounding, so lifetimes and delivered charges agree to ~1e-12 (asserted at
// 1e-9 for headroom).
func TestFastPathMatchesSteppedDefault(t *testing.T) {
	for name, p := range fastpathProfiles() {
		m := stochastic.Default()
		fast, err := battery.SimulateUntilExhausted(m, p, battery.SimulateOptions{MaxTime: 60 * 3600})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := battery.SimulateUntilExhausted(m, p, battery.SimulateOptions{MaxTime: 60 * 3600, MaxStep: 1})
		if err != nil {
			t.Fatal(err)
		}
		if d := relDiff(fast.Lifetime, ref.Lifetime); d > 1e-9 {
			t.Errorf("%s: lifetime fast %v vs stepped %v (rel %.3e)", name, fast.Lifetime, ref.Lifetime, d)
		}
		if d := relDiff(fast.DeliveredCharge, ref.DeliveredCharge); d > 1e-9 {
			t.Errorf("%s: delivered fast %v vs stepped %v (rel %.3e)", name, fast.DeliveredCharge, ref.DeliveredCharge, d)
		}
		if fast.Exhausted != ref.Exhausted || fast.Repetitions != ref.Repetitions {
			t.Errorf("%s: fast %+v vs stepped %+v", name, fast, ref)
		}
	}
}

// TestFastPathSlotExactAccuracy is the accuracy gate of the satellite task:
// with ExpectedStep = SlotDuration the segment-stepped expected-value mode
// stays within 1e-6 of the fine-stepped SlotDuration-resolution reference on
// every gate profile.
func TestFastPathSlotExactAccuracy(t *testing.T) {
	ps := stochastic.Default().Params()
	ps.ExpectedStep = ps.SlotDuration
	for name, p := range fastpathProfiles() {
		m, err := stochastic.New(ps)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := battery.SimulateUntilExhausted(m, p, battery.SimulateOptions{MaxTime: 60 * 3600})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := battery.SimulateUntilExhausted(stochastic.Default(), p, battery.SimulateOptions{MaxTime: 60 * 3600, MaxStep: ps.SlotDuration})
		if err != nil {
			t.Fatal(err)
		}
		if d := relDiff(fast.Lifetime, ref.Lifetime); d > 1e-6 {
			t.Errorf("%s: lifetime fast %v vs slot-stepped %v (rel %.3e)", name, fast.Lifetime, ref.Lifetime, d)
		}
		if d := relDiff(fast.DeliveredCharge, ref.DeliveredCharge); d > 1e-6 {
			t.Errorf("%s: delivered fast %v vs slot-stepped %v (rel %.3e)", name, fast.DeliveredCharge, ref.DeliveredCharge, d)
		}
	}
}

// TestMonteCarloKeepsSlotPath: Monte Carlo mode gates itself off the analytic
// path, so default-dispatch results are byte-identical to the forced
// slot-level stepping they have always used, and DrainSegment (never reached
// through the drivers, but part of the interface) delegates to the same
// slot arithmetic.
func TestMonteCarloKeepsSlotPath(t *testing.T) {
	ps := stochastic.Default().Params()
	ps.MonteCarlo = true
	ps.Seed = 99
	m, err := stochastic.New(ps)
	if err != nil {
		t.Fatal(err)
	}
	if m.AnalyticOK() {
		t.Fatal("Monte Carlo instance must gate off the analytic path")
	}
	p := fastpathProfiles()["bench"]
	def, err := battery.SimulateUntilExhausted(m, p, battery.SimulateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	forced, err := battery.SimulateUntilExhausted(m, p, battery.SimulateOptions{MaxStep: 1})
	if err != nil {
		t.Fatal(err)
	}
	if def != forced {
		t.Fatalf("default dispatch %+v != forced slot stepping %+v", def, forced)
	}
	// DrainSegment delegation: one whole segment equals one Drain call.
	m.Reset()
	s1, a1 := m.DrainSegment(1.2, 33.4)
	d1 := m.DeliveredCharge()
	m.Reset()
	s2, a2 := m.Drain(1.2, 33.4)
	d2 := m.DeliveredCharge()
	if s1 != s2 || a1 != a2 || d1 != d2 {
		t.Fatalf("MC DrainSegment (%v,%v,%v) != Drain (%v,%v,%v)", s1, a1, d1, s2, a2, d2)
	}
}

// TestFastPathOperatorConsistency: the repetition transfer operator and plain
// segment stepping are the same arithmetic up to exp-product rounding, so a
// driver run (which uses the operator for the battery's whole steady state)
// agrees with a manual DrainSegment-only replay to ~1e-9.
func TestFastPathOperatorConsistency(t *testing.T) {
	p := fastpathProfiles()["bench"]
	withOp := stochastic.Default()
	r, err := battery.SimulateUntilExhausted(withOp, p, battery.SimulateOptions{MaxTime: 60 * 3600})
	if err != nil {
		t.Fatal(err)
	}
	segOnly := stochastic.Default()
	segOnly.Reset()
	t2, alive := 0.0, true
	for alive && t2 < 60*3600 {
		for _, seg := range p.Segments {
			s, al := segOnly.DrainSegment(seg.Current, seg.Duration)
			t2 += s
			if !al {
				alive = false
				break
			}
		}
	}
	if alive {
		t.Fatal("segment-only replay survived the horizon")
	}
	if d := relDiff(r.Lifetime, t2); d > 1e-9 {
		t.Errorf("lifetime with operator %v vs segment-only %v (rel %.3e)", r.Lifetime, t2, d)
	}
	if d := relDiff(r.DeliveredCharge, segOnly.DeliveredCharge()); d > 1e-9 {
		t.Errorf("delivered with operator %v vs segment-only %v (rel %.3e)", r.DeliveredCharge, segOnly.DeliveredCharge(), d)
	}
}

// TestFastPathExhaustionTime: ExhaustionTime agrees with a constant-load
// simulation from the same state and does not modify the state.
func TestFastPathExhaustionTime(t *testing.T) {
	m := stochastic.Default()
	m.Reset()
	availBefore, boundBefore := m.AvailableCharge(), m.BoundCharge()
	et := m.ExhaustionTime(1.0)
	if m.AvailableCharge() != availBefore || m.BoundCharge() != boundBefore || m.DeliveredCharge() != 0 {
		t.Fatal("ExhaustionTime modified the state")
	}
	r, err := battery.ConstantLoadLifetime(stochastic.Default(), 1.0, 60*3600)
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(et, r.Lifetime); d > 1e-9 {
		t.Errorf("ExhaustionTime %v vs simulated lifetime %v (rel %.3e)", et, r.Lifetime, d)
	}
	if zero := m.ExhaustionTime(0); !math.IsInf(zero, 1) {
		t.Errorf("ExhaustionTime(0) = %v, want +Inf", zero)
	}
}

// TestExpectedStepValidation: the new knob is range-checked.
func TestExpectedStepValidation(t *testing.T) {
	for _, bad := range []float64{-1, 10.5} {
		ps := stochastic.Default().Params()
		ps.ExpectedStep = bad
		if _, err := stochastic.New(ps); err == nil {
			t.Errorf("ExpectedStep %v: want error", bad)
		}
	}
	ps := stochastic.Default().Params()
	ps.ExpectedStep = 0.5
	if _, err := stochastic.New(ps); err != nil {
		t.Errorf("ExpectedStep 0.5: %v", err)
	}
}
