package stochastic

import (
	"math"

	"battsched/internal/battery"
	"battsched/internal/profile"
)

// This file is the analytic fast path of the expected-value mode: the
// battery.SegmentDrainer / battery.RepetitionTransferer implementation.
//
// Within a constant-current segment evaluated at step h, the expected-value
// recursion of drainExpected is, per step m = 0, 1, ...:
//
//	rec_m   = min(p_m · idleFrac · Imax · h, bound_m)   p_m = P·e^(−λ·dod_m)
//	demand  = I·h
//	survive when demand ≤ available_m + rec_m
//
// The delivered charge — and hence the depth of discharge driving p_m —
// advances by exactly I·h per step no matter what recovery does, so away
// from the bound clamp the recovery sequence is geometric: rec_m = a·qᵐ with
// a = p₀·idleFrac·Imax·h and q = e^(−λ·I·h/Max). Partial sums telescope to
// S_k = a·(1−qᵏ)/(1−q), which updates the three state variables over any k
// steps in O(1). The steps where a branch decision is near — the recovery
// clamp engaging (the margin is monotone decreasing in m) or exhaustion (the
// survival margin is concave in m, so both admit endpoint checks with a
// binary search for the boundary) — are executed through drainExpected
// itself, so every branch is taken by the exact reference arithmetic and the
// fast path only bulk-applies step runs that provably stay on the plain
// surviving branch, with a small absolute slack guarding the closed-form
// versus iterated rounding difference.

// AnalyticOK implements battery.AnalyticGater: the closed-form segment fast
// path covers expected-value mode only. Monte Carlo trajectories are defined
// one RNG draw per slot and must keep the stepped path.
func (b *Battery) AnalyticOK() bool { return !b.params.MonteCarlo }

// prefixSlack is the margin, in coulombs, by which the closed-form branch
// conditions must hold for a step to be bulk-applied. It is several orders of
// magnitude above the closed-form-versus-iterated rounding difference and
// several below any physically meaningful charge, so knife-edge steps — and
// only those — fall through to the exact per-step arithmetic.
const prefixSlack = 1e-6

// expectedConsts returns the geometric-recovery constants of the current
// state for a constant current at step h: the first-step recovery a (zero
// when the bound store is empty — then the clamp pins recovery to exactly
// zero and the same formulas cover the pure-drain phase), the per-step decay
// exponent x (rec_m = a·e^(−x·m)), and the per-step demand d.
func (b *Battery) expectedConsts(current, h float64) (a, x, d float64) {
	demandFrac := math.Min(current/b.params.MaxCurrent, 1)
	idleFrac := 1 - demandFrac
	a = b.recoveryProbability() * idleFrac * b.params.MaxCurrent * h
	if b.bound <= 0 {
		a = 0
	}
	x = b.params.RecoveryDecay * current * h / b.params.MaxCoulombs
	d = current * h
	return a, x, d
}

// geomSum returns Σ_{m=0}^{k-1} a·e^(−x·m) via expm1, which keeps full
// precision when x is tiny (1−e^(−x) would cancel).
func geomSum(a, x, k float64) float64 {
	if x == 0 {
		return a * k
	}
	return a * math.Expm1(-x*k) / math.Expm1(-x)
}

// expectedPrefix returns how many of the next `remaining` whole steps can be
// bulk-applied from the given state: the largest k such that every step
// m < k stays on the plain surviving branch with prefixSlack to spare. The
// no-clamp margin bound − S_m − rec_m is monotone decreasing in m and the
// survival margin available + S_m − m·d + rec_m − d is concave with a
// non-negative value required at m = 0, so the admissible set is a prefix
// and a binary search finds its end.
func expectedPrefix(avail, bound, a, x, d float64, remaining int) int {
	ok := func(m int) bool {
		fm := float64(m)
		s := geomSum(a, x, fm)
		rec := a * math.Exp(-x*fm)
		if a > 0 && bound-s-rec <= prefixSlack {
			return false
		}
		return avail+s-fm*d+rec-d > prefixSlack
	}
	if !ok(0) {
		return 0
	}
	if ok(remaining - 1) {
		return remaining
	}
	lo, hi := 0, remaining-1
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if ok(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// applyExpectedSlots advances the state over k plain surviving steps in
// closed form (the caller guarantees, via expectedPrefix, that no branch
// decision occurs inside the run).
func (b *Battery) applyExpectedSlots(a, x, d float64, k int) {
	fk := float64(k)
	s := geomSum(a, x, fk)
	demand := d * fk
	b.available += s - demand
	b.bound -= s
	b.delivered += demand
}

// DrainSegment implements battery.SegmentDrainer. In expected-value mode it
// reproduces the step-h expected recursion (h = Params.ExpectedStep) over the
// whole constant-current segment: whole steps bulk-applied in closed form
// where provably branch-free, exact drainExpected steps at branch
// boundaries, and a final fractional step for the segment tail — the same
// step sequence the uniform-stepping driver at MaxStep = h generates. In
// Monte Carlo mode it delegates to the exact slot path (the analytic gate
// keeps the drivers off this method, but the delegation makes it correct
// regardless).
func (b *Battery) DrainSegment(current, dt float64) (sustained float64, alive bool) {
	if !b.alive {
		return 0, false
	}
	if dt <= 0 {
		return 0, true
	}
	if current < 0 {
		current = 0
	}
	if b.params.MonteCarlo {
		return b.drainMonteCarlo(current, dt)
	}
	h := b.estep
	slots := int(math.Floor(dt / h))
	tail := dt - float64(slots)*h
	if tail <= 1e-12 {
		tail = 0
	}
	done := 0.0
	for remaining := slots; remaining > 0; {
		a, x, d := b.expectedConsts(current, h)
		k := expectedPrefix(b.available, b.bound, a, x, d, remaining)
		if k < 1 {
			s, al := b.drainExpected(current, h)
			if !al {
				return done + s, false
			}
			done += h
			remaining--
			continue
		}
		b.applyExpectedSlots(a, x, d, k)
		done += float64(k) * h
		remaining -= k
	}
	if tail > 0 {
		s, al := b.drainExpected(current, tail)
		if !al {
			return done + s, false
		}
	}
	return dt, true
}

// ExhaustionTime implements battery.SegmentDrainer. Survival requires the
// cumulative demand to stay within the nominal store plus everything the
// bound store can ever release, so exhaustion under a positive constant
// current happens within MaxCoulombs/I plus one step; draining a scratch
// copy over that horizon pins the instant without touching the state. In
// Monte Carlo mode the exhaustion time is a random variable; this reports
// the expected-value mode estimate (the analytic driver never runs Monte
// Carlo instances, so nothing dispatches on it).
func (b *Battery) ExhaustionTime(current float64) float64 {
	if !b.alive {
		return 0
	}
	if current <= 0 {
		return math.Inf(1)
	}
	clone := *b
	clone.params.MonteCarlo = false
	horizon := b.params.MaxCoulombs/current + b.estep
	sustained, alive := clone.DrainSegment(current, horizon)
	if alive {
		return math.Inf(1)
	}
	return sustained
}

// repSeg caches the per-segment constants of the repetition operator. The
// recovery constants are stored per unit of the repetition-start recovery
// probability, which is the only state dependence: within a repetition the
// depth of discharge advances deterministically, so every segment's recovery
// sum is the start probability times a precomputed factor.
type repSeg struct {
	demand    float64 // whole-step demand of the segment: slots·I·h
	recFactor float64 // Σ recovery of the whole steps, per unit start probability
	decay     float64 // e^(−λ·segment demand/Max): probability decay across the steps
	tail      float64 // fractional trailing step, seconds (0 when none)
	tailDem   float64 // I·tail
	tailRec   float64 // recovery of the tail step, per unit probability
	tailDecay float64 // probability decay across the tail
}

// repOp is the battery.RepetitionOperator of one profile for one instance:
// one recoveryProbability evaluation (a single exp) plus a handful of
// multiply-adds per segment advance a whole repetition, replacing the
// per-step exp of the reference recursion.
type repOp struct {
	b    *Battery
	segs []repSeg
	// conservative-survival bounds over one repetition
	totalDemand  float64 // coulombs demanded by one full repetition
	maxStepDem   float64 // largest single-step demand
	recPerProb   float64 // recovery upper bound per unit probability: Imax·Σ idle_s·dur_s
	stepRecCoeff float64 // single-step recovery upper bound per unit probability: Imax·h
	// probability cache: CanAdvance evaluates the start probability (one
	// exp) and Advance reuses it when the state has not moved in between
	// (the driver's call pattern), halving the exps per repetition.
	cachedP         float64
	cachedDelivered float64
	cacheValid      bool
}

// RepetitionOperator implements battery.RepetitionTransferer.
func (b *Battery) RepetitionOperator(p *profile.Profile) battery.RepetitionOperator {
	h := b.estep
	lambda := b.params.RecoveryDecay / b.params.MaxCoulombs
	op := &repOp{b: b, stepRecCoeff: b.params.MaxCurrent * h}
	for _, sg := range p.Segments {
		cur := sg.Current
		if cur < 0 {
			cur = 0
		}
		slots := int(math.Floor(sg.Duration / h))
		tail := sg.Duration - float64(slots)*h
		if tail <= 1e-12 {
			tail = 0
		}
		idle := 1 - math.Min(cur/b.params.MaxCurrent, 1)
		x := lambda * cur * h
		rs := repSeg{
			demand:    float64(slots) * cur * h,
			recFactor: geomSum(idle*b.params.MaxCurrent*h, x, float64(slots)),
			decay:     math.Exp(-x * float64(slots)),
			tail:      tail,
			tailDem:   cur * tail,
			tailRec:   idle * b.params.MaxCurrent * tail,
			tailDecay: math.Exp(-lambda * cur * tail),
		}
		op.segs = append(op.segs, rs)
		op.totalDemand += rs.demand + rs.tailDem
		if d := cur * h; d > op.maxStepDem {
			op.maxStepDem = d
		}
		op.recPerProb += idle * b.params.MaxCurrent * sg.Duration
	}
	return op
}

// CanAdvance implements battery.RepetitionOperator. It is conservative in
// the required direction: recovery only ever adds charge, so the available
// store minus the repetition's whole demand lower-bounds every step's
// available charge, and the recovery probability only decays within a
// repetition, so the start probability times the cached idle time
// upper-bounds the repetition's recovery draw on the bound store. When
// either margin is thin the driver falls back to segment stepping and the
// exact arithmetic decides.
func (o *repOp) CanAdvance() bool {
	b := o.b
	if !b.alive || b.params.MonteCarlo {
		return false
	}
	if b.available-o.totalDemand <= o.maxStepDem+prefixSlack {
		return false
	}
	p0 := b.recoveryProbability()
	o.cachedP, o.cachedDelivered, o.cacheValid = p0, b.delivered, true
	return b.bound > p0*(o.recPerProb+o.stepRecCoeff)+prefixSlack
}

// Advance implements battery.RepetitionOperator: one full repetition on the
// plain surviving branch throughout (guaranteed by CanAdvance). The
// probability factor threads through the segments as a running product of
// cached decays, so the whole repetition costs one exp.
func (o *repOp) Advance() {
	b := o.b
	p := 0.0
	if o.cacheValid && o.cachedDelivered == b.delivered {
		p = o.cachedP
	} else {
		p = b.recoveryProbability()
	}
	o.cacheValid = false
	for i := range o.segs {
		sg := &o.segs[i]
		rec := p * sg.recFactor
		b.available += rec - sg.demand
		b.bound -= rec
		b.delivered += sg.demand
		p *= sg.decay
		if sg.tail > 0 {
			rec = p * sg.tailRec
			b.available += rec - sg.tailDem
			b.bound -= rec
			b.delivered += sg.tailDem
			p *= sg.tailDecay
		}
	}
}

// compile-time interface checks
var (
	_ battery.SegmentDrainer       = (*Battery)(nil)
	_ battery.RepetitionTransferer = (*Battery)(nil)
	_ battery.AnalyticGater        = (*Battery)(nil)
	_ battery.RepetitionOperator   = (*repOp)(nil)
)
