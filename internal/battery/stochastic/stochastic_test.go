package stochastic

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"battsched/internal/battery"
	"battsched/internal/profile"
)

func TestNewRejectsBadParams(t *testing.T) {
	ok := Default().Params()
	bad := []func(Params) Params{
		func(p Params) Params { p.MaxCoulombs = 0; return p },
		func(p Params) Params { p.NominalCoulombs = 0; return p },
		func(p Params) Params { p.NominalCoulombs = p.MaxCoulombs + 1; return p },
		func(p Params) Params { p.MaxCurrent = 0; return p },
		func(p Params) Params { p.RecoveryProb = -0.1; return p },
		func(p Params) Params { p.RecoveryProb = 1.1; return p },
		func(p Params) Params { p.RecoveryDecay = -1; return p },
		func(p Params) Params { p.SlotDuration = 0; return p },
	}
	for i, mut := range bad {
		if _, err := New(mut(ok)); !errors.Is(err, ErrBadParams) {
			t.Errorf("case %d: expected ErrBadParams, got %v", i, err)
		}
	}
}

func TestResetRestoresState(t *testing.T) {
	b := Default()
	b.Drain(2, 100)
	b.Reset()
	if b.DeliveredCharge() != 0 {
		t.Fatalf("delivered after reset = %v", b.DeliveredCharge())
	}
	if math.Abs(b.AvailableCharge()-b.Params().NominalCoulombs) > 1e-9 {
		t.Fatalf("available after reset = %v, want %v", b.AvailableCharge(), b.Params().NominalCoulombs)
	}
	if math.Abs(b.AvailableCharge()+b.BoundCharge()-b.MaxCapacity()) > 1e-9 {
		t.Fatal("available + bound != max capacity after reset")
	}
}

func TestExpectedModeIsDeterministic(t *testing.T) {
	run := func() battery.Result {
		b := Default()
		r, err := battery.ConstantLoadLifetime(b, 1.2, 1e6)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Lifetime != b.Lifetime || a.DeliveredCharge != b.DeliveredCharge {
		t.Fatalf("expected-value mode not deterministic: %+v vs %+v", a, b)
	}
}

func TestRateCapacityEffectExpectedMode(t *testing.T) {
	loads := []float64{0.2, 0.5, 1.0, 1.8, 2.4}
	prev := math.Inf(1)
	for _, i := range loads {
		b := Default()
		r, err := battery.ConstantLoadLifetime(b, i, 2e6)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Exhausted {
			t.Fatalf("battery did not die at %v A", i)
		}
		if r.DeliveredCharge > prev+1e-3 {
			t.Fatalf("delivered charge increased with load at %v A: %v > %v", i, r.DeliveredCharge, prev)
		}
		if r.DeliveredCharge > b.MaxCapacity()+1e-6 {
			t.Fatalf("delivered exceeds theoretical capacity")
		}
		if r.DeliveredCharge < b.Params().NominalCoulombs-b.Params().MaxCurrent*b.Params().SlotDuration-1e-3 {
			t.Fatalf("delivered %v below nominal capacity %v", r.DeliveredCharge, b.Params().NominalCoulombs)
		}
		prev = r.DeliveredCharge
	}
}

func TestHeavyLoadDeliversNominalOnly(t *testing.T) {
	b := Default()
	r, err := battery.ConstantLoadLifetime(b, b.Params().MaxCurrent, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exhausted {
		t.Fatal("battery survived a max-current discharge")
	}
	if math.Abs(r.DeliveredCharge-b.Params().NominalCoulombs) > 0.01*b.Params().NominalCoulombs {
		t.Fatalf("delivered at max current = %v, want ~nominal %v", r.DeliveredCharge, b.Params().NominalCoulombs)
	}
}

func TestLightLoadApproachesMaxCapacity(t *testing.T) {
	b := Default()
	r, err := battery.ConstantLoadLifetime(b, 0.05, 2e7)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exhausted {
		t.Fatal("battery did not die under the horizon")
	}
	if frac := r.DeliveredCharge / b.MaxCapacity(); frac < 0.9 {
		t.Fatalf("light-load delivered fraction = %v, want >= 0.9", frac)
	}
}

func TestBurstyLoadOutlivesContinuousLoad(t *testing.T) {
	// Same average current, one continuous and one bursty with rest periods:
	// the bursty one must deliver at least as much charge (recovery effect).
	avg := 1.0
	cont := Default()
	rc, err := battery.ConstantLoadLifetime(cont, avg, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	burst := Default()
	// 2 A for 5 s then idle 5 s = same 1 A average.
	p := profileWith(t, 2*avg, 5, 0, 5)
	rb, err := battery.SimulateUntilExhausted(burst, p, battery.SimulateOptions{MaxTime: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if rb.DeliveredCharge < rc.DeliveredCharge-1 {
		t.Fatalf("bursty load delivered %v, continuous delivered %v", rb.DeliveredCharge, rc.DeliveredCharge)
	}
}

func TestMonteCarloModeRunsAndDies(t *testing.T) {
	p := Default().Params()
	p.MonteCarlo = true
	p.Seed = 42
	p.SlotDuration = 0.05
	b, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := battery.ConstantLoadLifetime(b, 1.5, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exhausted {
		t.Fatal("Monte Carlo battery did not die")
	}
	if r.DeliveredCharge < p.NominalCoulombs*0.9 || r.DeliveredCharge > p.MaxCoulombs*1.01 {
		t.Fatalf("Monte Carlo delivered charge %v outside plausible range", r.DeliveredCharge)
	}
}

func TestMonteCarloReproducibleWithSeed(t *testing.T) {
	run := func(seed int64) battery.Result {
		p := Default().Params()
		p.MonteCarlo = true
		p.Seed = seed
		p.SlotDuration = 0.05
		b, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		r, err := battery.ConstantLoadLifetime(b, 1.5, 1e6)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(7), run(7)
	if a.Lifetime != b.Lifetime {
		t.Fatalf("same seed, different lifetimes: %v vs %v", a.Lifetime, b.Lifetime)
	}
	c := run(8)
	if a.Lifetime == c.Lifetime && a.DeliveredCharge == c.DeliveredCharge {
		t.Log("different seeds produced identical results (possible but unlikely)")
	}
}

func TestRecoveryProbabilityDecaysWithDischarge(t *testing.T) {
	b := Default()
	p0 := b.recoveryProbability()
	b.Drain(2.0, 1000)
	p1 := b.recoveryProbability()
	if p1 >= p0 {
		t.Fatalf("recovery probability did not decay: %v -> %v", p0, p1)
	}
	if p0 > 1 || p1 < 0 {
		t.Fatalf("probabilities out of range: %v, %v", p0, p1)
	}
}

func TestDrainAfterDeathAndEdgeInputs(t *testing.T) {
	b := Default()
	for {
		if _, alive := b.Drain(2.4, 100); !alive {
			break
		}
	}
	if s, alive := b.Drain(1, 1); s != 0 || alive {
		t.Fatalf("Drain after death = (%v,%v)", s, alive)
	}
	c := Default()
	if s, alive := c.Drain(1, 0); s != 0 || !alive {
		t.Fatalf("Drain(1,0) = (%v,%v)", s, alive)
	}
	if s, alive := c.Drain(-1, 5); s != 5 || !alive {
		t.Fatalf("Drain(-1,5) = (%v,%v)", s, alive)
	}
}

func TestNameAndString(t *testing.T) {
	b := Default()
	if b.Name() != "stochastic" {
		t.Fatalf("Name = %q", b.Name())
	}
	if b.String() == "" {
		t.Fatal("empty String()")
	}
	p := b.Params()
	p.MonteCarlo = true
	mc, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if mc.String() == "" {
		t.Fatal("empty Monte Carlo String()")
	}
}

// Property: delivered charge stays within [0, MaxCoulombs] and available/bound
// stores stay non-negative for arbitrary load sequences (expected-value mode).
func TestStochasticInvariantProperty(t *testing.T) {
	f := func(loads []float64) bool {
		b := Default()
		for _, l := range loads {
			i := math.Abs(math.Mod(l, 3))
			_, alive := b.Drain(i, 60)
			if b.DeliveredCharge() < -1e-9 || b.DeliveredCharge() > b.MaxCapacity()+1e-6 {
				return false
			}
			if b.AvailableCharge() < -1e-6 || b.BoundCharge() < -1e-6 {
				return false
			}
			if !alive {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// profileWith builds an alternating two-level profile.
func profileWith(t *testing.T, i1, d1, i2, d2 float64) *profile.Profile {
	t.Helper()
	p := profile.New()
	p.Append(d1, i1)
	p.Append(d2, i2)
	return p
}
