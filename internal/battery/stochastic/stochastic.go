// Package stochastic implements a discrete-time stochastic battery model in
// the style used by the paper's authors for their evaluation (Rao, Singhal,
// Kumar, Navet, "Battery model for embedded systems", VLSI Design 2005,
// itself in the Chiasserini/Panigrahi family of stochastic charge-unit
// models).
//
// The battery holds a theoretical capacity T of charge units of which only a
// nominal fraction N is directly available; the rest is bound. Time is
// divided into slots. In a slot the load demands charge with probability
// proportional to the ratio of the load current to a reference maximum
// current; slots without demand are idle slots, during which one charge unit
// is recovered from the bound store with a probability that decays
// exponentially with the depth of discharge. The battery is exhausted when
// the available store is empty. Under an infinitesimal load nearly the whole
// theoretical capacity is delivered (the paper's "maximum capacity"); under
// heavy continuous loads only the nominal store is delivered — the
// rate-capacity effect the scheduling guidelines exploit.
//
// Two evaluation modes are provided:
//
//   - expected-value mode (default): charge flows use the slot-level expected
//     values, which makes runs deterministic and O(1) per Drain call;
//   - Monte Carlo mode: charge units move according to the seeded RNG, one
//     slot at a time, reproducing the stochastic trajectories of the original
//     model.
//
// Expected-value mode additionally implements battery.SegmentDrainer and
// battery.RepetitionTransferer, so battery.SimulateUntilExhausted advances it
// whole constant-current segments (and whole profile repetitions) at a time.
// The key identity: within a constant-current segment the expected-value
// recursion at step h has deterministic depth of discharge (delivered charge
// grows by I·h per step regardless of recovery), so the per-step recovery
// term is a geometric sequence a·qᵐ whose partial sums have a closed form —
// the whole segment collapses to O(1) arithmetic plus exact per-step updates
// at the few steps where a branch (recovery clamped by the bound store, or
// exhaustion) is near. Params.ExpectedStep selects the reproduced step
// resolution. Monte Carlo mode has no such collapse — its trajectory is
// defined one RNG draw per slot — so it gates itself off the analytic path
// via battery.AnalyticGater and keeps fine stepping.
package stochastic

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"battsched/internal/battery"
)

// Params configure the stochastic battery model.
type Params struct {
	// MaxCoulombs is the theoretical (maximum) capacity T in coulombs — the
	// charge delivered under an infinitesimal load.
	MaxCoulombs float64
	// NominalCoulombs is the directly available (nominal) capacity N in
	// coulombs, 0 < NominalCoulombs <= MaxCoulombs.
	NominalCoulombs float64
	// MaxCurrent is the reference current (amperes) at which every slot is a
	// demand slot and no recovery occurs.
	MaxCurrent float64
	// RecoveryProb is the base probability of recovering one charge unit in
	// an idle slot when the battery is fully charged.
	RecoveryProb float64
	// RecoveryDecay is the exponential decay rate of the recovery probability
	// with the depth of discharge (fraction of MaxCoulombs already consumed).
	RecoveryDecay float64
	// SlotDuration is the length of one time slot in seconds.
	SlotDuration float64
	// MonteCarlo selects per-slot random sampling instead of expected values.
	MonteCarlo bool
	// Seed seeds the RNG used in Monte Carlo mode.
	Seed int64
	// ExpectedStep is the time resolution, in seconds, of the expected-value
	// recursion that the analytic segment fast path reproduces (in closed
	// form, so the cost per segment is independent of the resolution). Zero
	// selects 1 s — the substep of the historical uniform-stepping driver, so
	// default fast-path results track the pre-fast-path numbers to rounding
	// error. Set it to SlotDuration for slot-exact expected-value evaluation.
	// Must be at most 10 s (the expected-value chunk bound). Monte Carlo mode
	// ignores it.
	ExpectedStep float64
}

// ErrBadParams is returned by New for invalid parameters.
var ErrBadParams = errors.New("stochastic: invalid parameters")

// Battery is a stochastic charge-unit battery.
type Battery struct {
	params Params
	unit   float64 // charge per slot at MaxCurrent, in coulombs
	estep  float64 // resolved ExpectedStep (1 s when the param is zero)
	rng    *rand.Rand

	available float64 // coulombs directly available
	bound     float64 // coulombs bound (recoverable)
	delivered float64 // coulombs delivered since Reset
	alive     bool
}

// The model registers itself so battery.New("stochastic") and every -battery
// flag resolve it by name.
func init() { battery.Register("stochastic", func() battery.Model { return Default() }) }

// Default returns the model calibrated like the paper's cell: a 1.2 V AAA
// NiMH battery with 2000 mAh maximum and roughly 1600 mAh nominal capacity,
// evaluated in deterministic expected-value mode.
func Default() *Battery {
	b, err := New(Params{
		MaxCoulombs:     battery.Coulombs(2000),
		NominalCoulombs: battery.Coulombs(1580),
		MaxCurrent:      2.5,
		RecoveryProb:    0.05,
		RecoveryDecay:   2.5,
		SlotDuration:    0.01,
	})
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	return b
}

// New returns a fully charged stochastic battery.
func New(p Params) (*Battery, error) {
	if p.MaxCoulombs <= 0 || p.NominalCoulombs <= 0 || p.NominalCoulombs > p.MaxCoulombs ||
		p.MaxCurrent <= 0 || p.RecoveryProb < 0 || p.RecoveryProb > 1 ||
		p.RecoveryDecay < 0 || p.SlotDuration <= 0 ||
		p.ExpectedStep < 0 || p.ExpectedStep > expectedChunk {
		return nil, fmt.Errorf("%w: %+v", ErrBadParams, p)
	}
	b := &Battery{
		params: p,
		unit:   p.MaxCurrent * p.SlotDuration,
		estep:  p.ExpectedStep,
	}
	if b.estep == 0 {
		b.estep = 1
	}
	b.Reset()
	return b, nil
}

// Name implements battery.Model.
func (b *Battery) Name() string { return "stochastic" }

// Params returns the model parameters.
func (b *Battery) Params() Params { return b.params }

// Reset implements battery.Model. Only Monte Carlo mode maintains the RNG —
// reseeding a rand source costs microseconds, longer than a whole analytic
// expected-value lifetime — and it is reseeded in place rather than
// reallocated, so instances can be reused across simulations (the batch
// drivers reset-and-reuse one instance per model) without per-run garbage.
func (b *Battery) Reset() {
	b.available = b.params.NominalCoulombs
	b.bound = b.params.MaxCoulombs - b.params.NominalCoulombs
	b.delivered = 0
	b.alive = true
	if !b.params.MonteCarlo {
		return
	}
	if b.rng == nil {
		b.rng = rand.New(rand.NewSource(b.params.Seed))
	} else {
		b.rng.Seed(b.params.Seed)
	}
}

// MaxCapacity implements battery.Model.
func (b *Battery) MaxCapacity() float64 { return b.params.MaxCoulombs }

// DeliveredCharge implements battery.Model.
func (b *Battery) DeliveredCharge() float64 { return b.delivered }

// AvailableCharge returns the directly available charge in coulombs.
func (b *Battery) AvailableCharge() float64 { return math.Max(b.available, 0) }

// BoundCharge returns the bound (recoverable) charge in coulombs.
func (b *Battery) BoundCharge() float64 { return math.Max(b.bound, 0) }

// recoveryProbability returns the per-idle-slot probability of recovering one
// charge unit at the current depth of discharge.
func (b *Battery) recoveryProbability() float64 {
	dod := b.delivered / b.params.MaxCoulombs
	if dod < 0 {
		dod = 0
	}
	p := b.params.RecoveryProb * math.Exp(-b.params.RecoveryDecay*dod)
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Drain implements battery.Model.
func (b *Battery) Drain(current, dt float64) (sustained float64, alive bool) {
	if !b.alive {
		return 0, false
	}
	if dt <= 0 {
		return 0, true
	}
	if current < 0 {
		current = 0
	}
	if b.params.MonteCarlo {
		return b.drainMonteCarlo(current, dt)
	}
	return b.drainExpected(current, dt)
}

// expectedChunk is the largest interval drainExpected treats as one
// expected-value step (and therefore the largest Params.ExpectedStep).
const expectedChunk = 10.0 // seconds

// drainExpected advances the model using slot-level expected values; it
// processes the whole interval analytically in bounded-size chunks so the
// depth-of-discharge dependence of the recovery probability stays accurate.
func (b *Battery) drainExpected(current, dt float64) (sustained float64, alive bool) {
	t := 0.0
	for t < dt {
		h := math.Min(expectedChunk, dt-t)
		demandFrac := math.Min(current/b.params.MaxCurrent, 1)
		idleFrac := 1 - demandFrac
		// Expected recovery over h seconds: one unit per idle slot with
		// probability p, i.e. p*idleFrac*unit/slot coulombs per second.
		recRate := b.recoveryProbability() * idleFrac * b.params.MaxCurrent
		rec := math.Min(recRate*h, b.bound)
		demand := current * h
		if demand <= b.available+rec {
			b.available += rec - demand
			b.bound -= rec
			b.delivered += demand
			t += h
			continue
		}
		// Exhaustion inside this chunk: find the sustainable fraction.
		// available + (recRate - current)*x = 0  =>  x = available/(current-recRate)
		drainRate := current - math.Min(recRate, b.bound/h)
		var x float64
		if drainRate <= 0 {
			x = h
		} else {
			x = b.available / drainRate
		}
		if x > h {
			x = h
		}
		recX := math.Min(recRate*x, b.bound)
		b.delivered += current * x
		b.bound -= recX
		b.available += recX - current*x
		if b.available < 1e-9 {
			b.available = 0
			b.alive = false
			return t + x, false
		}
		t += x
	}
	return dt, true
}

// drainMonteCarlo advances the model one slot at a time using the RNG.
func (b *Battery) drainMonteCarlo(current, dt float64) (sustained float64, alive bool) {
	slots := int(math.Ceil(dt / b.params.SlotDuration))
	if slots < 1 {
		slots = 1
	}
	slotDur := dt / float64(slots)
	demandProb := math.Min(current/b.params.MaxCurrent, 1)
	for s := 0; s < slots; s++ {
		if b.rng.Float64() < demandProb {
			// Demand slot: draw one unit (scaled to the actual slot length).
			q := b.params.MaxCurrent * slotDur
			b.available -= q
			b.delivered += q
			if b.available <= 0 {
				b.available = 0
				b.alive = false
				return float64(s+1) * slotDur, false
			}
		} else if b.bound > 0 && b.rng.Float64() < b.recoveryProbability() {
			// Idle slot: recover one unit from the bound store.
			q := math.Min(b.params.MaxCurrent*slotDur, b.bound)
			b.bound -= q
			b.available += q
		}
	}
	return dt, true
}

// String implements fmt.Stringer.
func (b *Battery) String() string {
	mode := "expected"
	if b.params.MonteCarlo {
		mode = "montecarlo"
	}
	return fmt.Sprintf("Stochastic(%s max=%.0fmAh nom=%.0fmAh avail=%.0fmAh bound=%.0fmAh)",
		mode, battery.MAh(b.params.MaxCoulombs), battery.MAh(b.params.NominalCoulombs),
		battery.MAh(b.AvailableCharge()), battery.MAh(b.BoundCharge()))
}

// compile-time interface check
var _ battery.Model = (*Battery)(nil)
