package battery_test

import (
	"math"
	"testing"

	"battsched/internal/battery"
	"battsched/internal/battery/diffusion"
	"battsched/internal/battery/kibam"
	"battsched/internal/battery/peukert"
	"battsched/internal/profile"
)

// quantumModel is a test double with an internal step quantum: every Drain
// call sustains at most quantum seconds regardless of the requested dt, like
// a model with a coarse internal time discretisation. It never implements
// SegmentDrainer, so it always takes the stepped path.
type quantumModel struct {
	quantum   float64
	capacity  float64
	delivered float64
	alive     bool
}

func (q *quantumModel) Name() string { return "quantum" }
func (q *quantumModel) Reset()       { q.delivered = 0; q.alive = true }
func (q *quantumModel) Drain(current, dt float64) (float64, bool) {
	if !q.alive {
		return 0, false
	}
	if dt <= 0 {
		return 0, true
	}
	s := math.Min(dt, q.quantum)
	q.delivered += current * s
	if q.delivered >= q.capacity {
		q.alive = false
		return s, false
	}
	return s, true
}
func (q *quantumModel) MaxCapacity() float64     { return q.capacity }
func (q *quantumModel) DeliveredCharge() float64 { return q.delivered }

// TestSteppedAccountingUsesSustainedTime is the regression test for the
// substep accounting fix: the driver must deduct the sustained time from the
// segment remainder, not the requested dt, or a model that sustains only part
// of a step sees the profile advance faster than its own clock (here: 16
// repetitions counted inside a 10 s horizon of a 2 s profile).
func TestSteppedAccountingUsesSustainedTime(t *testing.T) {
	m := &quantumModel{quantum: 0.3, capacity: 1e9}
	p := profile.Constant(0.5, 2)
	r, err := battery.SimulateUntilExhausted(m, p, battery.SimulateOptions{MaxTime: 10, MaxStep: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Exhausted {
		t.Fatal("battery should have survived the horizon")
	}
	if math.Abs(r.Lifetime-10) > 1e-9 {
		t.Fatalf("lifetime = %v, want the 10 s horizon", r.Lifetime)
	}
	if r.Repetitions != 5 {
		t.Fatalf("repetitions = %d, want 5 (10 s / 2 s profile)", r.Repetitions)
	}
	if want := 0.5 * 10; math.Abs(r.DeliveredCharge-want) > 1e-9 {
		t.Fatalf("delivered = %v, want %v (0.5 A over the whole horizon)", r.DeliveredCharge, want)
	}
}

// TestSteppedRejectsStalledModel pins the no-progress guard: a model that
// sustains zero time while claiming to be alive is an error, not a hang.
func TestSteppedRejectsStalledModel(t *testing.T) {
	m := &quantumModel{quantum: 0, capacity: 1e9}
	p := profile.Constant(1, 10)
	if _, err := battery.SimulateUntilExhausted(m, p, battery.SimulateOptions{MaxTime: 100, MaxStep: 1}); err == nil {
		t.Fatal("expected an error for a model that makes no progress")
	}
}

// lazySegmentDrainer violates the SegmentDrainer contract by under-sustaining
// surviving segments (it reuses the quantum model's partial advance).
type lazySegmentDrainer struct{ quantumModel }

func (l *lazySegmentDrainer) DrainSegment(current, dt float64) (float64, bool) {
	return l.Drain(current, dt)
}
func (l *lazySegmentDrainer) ExhaustionTime(float64) float64 { return math.Inf(1) }

// TestAnalyticRejectsUnderSustainingModel pins the analytic-path contract
// guard: a model that survives a segment without sustaining all of it is an
// error, not a silent time drift or a hang.
func TestAnalyticRejectsUnderSustainingModel(t *testing.T) {
	m := &lazySegmentDrainer{quantumModel{quantum: 0.3, capacity: 1e9}}
	p := profile.Constant(1, 10)
	if _, err := battery.SimulateUntilExhausted(m, p, battery.SimulateOptions{MaxTime: 100}); err == nil {
		t.Fatal("expected an error for an under-sustaining SegmentDrainer")
	}
}

// recoveryProfile is a recovery-heavy two-level load: heavy bursts separated
// by near-rest periods, the shape that exercises both the rate-capacity and
// the recovery effects.
func recoveryProfile() *profile.Profile {
	p := profile.New()
	p.Append(5, 1.2)
	p.Append(5, 0.05)
	return p
}

// scaledAnalyticModels returns small-capacity instances of the three
// closed-form models, so a MaxStep 1e-3 reference simulation stays fast.
func scaledAnalyticModels(t *testing.T) []battery.Model {
	t.Helper()
	kb, err := kibam.New(kibam.Params{CapacityCoulombs: battery.Coulombs(100), C: 0.5, K: 2.2e-4})
	if err != nil {
		t.Fatal(err)
	}
	df, err := diffusion.New(diffusion.Params{AlphaCoulombs: battery.Coulombs(100), BetaSquared: 4.0e-3})
	if err != nil {
		t.Fatal(err)
	}
	pk, err := peukert.New(peukert.Params{
		ReferenceCapacityCoulombs: battery.Coulombs(80),
		MaxCoulombs:               battery.Coulombs(100),
		ReferenceCurrent:          1.0,
		Exponent:                  1.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	return []battery.Model{kb, df, pk}
}

// TestAnalyticMatchesFineStepReference is the accuracy test justifying the
// golden regeneration: on a recovery-heavy profile the analytic path must be
// at least as close to a fine-step (MaxStep 1e-3) reference as the MaxStep 2
// stepping the experiments used before, and itself within rounding of the
// reference (the closed forms are exact; only the float association differs).
func TestAnalyticMatchesFineStepReference(t *testing.T) {
	p := recoveryProfile()
	for _, m := range scaledAnalyticModels(t) {
		if _, ok := m.(battery.SegmentDrainer); !ok {
			t.Fatalf("%s: expected an analytic model", m.Name())
		}
		ref, err := battery.SimulateUntilExhausted(m, p, battery.SimulateOptions{MaxTime: 1e6, MaxStep: 1e-3})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		coarse, err := battery.SimulateUntilExhausted(m, p, battery.SimulateOptions{MaxTime: 1e6, MaxStep: 2})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		analytic, err := battery.SimulateUntilExhausted(m, p, battery.SimulateOptions{MaxTime: 1e6})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if !ref.Exhausted || !coarse.Exhausted || !analytic.Exhausted {
			t.Fatalf("%s: battery survived: ref=%v coarse=%v analytic=%v", m.Name(), ref, coarse, analytic)
		}
		errAnalytic := math.Abs(analytic.Lifetime - ref.Lifetime)
		errCoarse := math.Abs(coarse.Lifetime - ref.Lifetime)
		slack := 1e-7 * ref.Lifetime
		if errAnalytic > errCoarse+slack {
			t.Fatalf("%s: analytic lifetime error %v exceeds MaxStep-2 error %v (ref %v, analytic %v, coarse %v)",
				m.Name(), errAnalytic, errCoarse, ref.Lifetime, analytic.Lifetime, coarse.Lifetime)
		}
		if errAnalytic > 1e-6*ref.Lifetime {
			t.Fatalf("%s: analytic lifetime %v deviates from fine-step reference %v by %v",
				m.Name(), analytic.Lifetime, ref.Lifetime, errAnalytic)
		}
		if dq := math.Abs(analytic.DeliveredCharge - ref.DeliveredCharge); dq > 1e-6*ref.DeliveredCharge {
			t.Fatalf("%s: analytic delivered %v deviates from reference %v by %v",
				m.Name(), analytic.DeliveredCharge, ref.DeliveredCharge, dq)
		}
	}
}

// TestAnalyticCountsRepetitionsLikeStepped checks the two paths agree on the
// repetition count and exhaustion flag, not just the lifetime.
func TestAnalyticCountsRepetitionsLikeStepped(t *testing.T) {
	p := recoveryProfile()
	for _, m := range scaledAnalyticModels(t) {
		stepped, err := battery.SimulateUntilExhausted(m, p, battery.SimulateOptions{MaxTime: 1e6, MaxStep: 2})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		analytic, err := battery.SimulateUntilExhausted(m, p, battery.SimulateOptions{MaxTime: 1e6})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if stepped.Repetitions != analytic.Repetitions || stepped.Exhausted != analytic.Exhausted {
			t.Fatalf("%s: stepped %+v vs analytic %+v", m.Name(), stepped, analytic)
		}
	}
}

// TestAnalyticHorizonClipping checks the analytic path clips the final
// partial repetition at the horizon exactly as the stepped path does.
func TestAnalyticHorizonClipping(t *testing.T) {
	for _, m := range scaledAnalyticModels(t) {
		p := profile.Constant(0.001, 7) // tiny load: the horizon wins
		r, err := battery.SimulateUntilExhausted(m, p, battery.SimulateOptions{MaxTime: 100})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if r.Exhausted {
			t.Fatalf("%s: battery should have survived", m.Name())
		}
		if math.Abs(r.Lifetime-100) > 1e-9 {
			t.Fatalf("%s: lifetime = %v, want horizon 100", m.Name(), r.Lifetime)
		}
		if r.Repetitions != 14 { // floor(100 / 7)
			t.Fatalf("%s: repetitions = %d, want 14", m.Name(), r.Repetitions)
		}
		if want := 0.001 * 100; math.Abs(r.DeliveredCharge-want) > 1e-9 {
			t.Fatalf("%s: delivered = %v, want %v", m.Name(), r.DeliveredCharge, want)
		}
	}
}

// TestExhaustionTimeMatchesConstantLoadLifetime cross-checks the Newton
// root-finding against the simulation driver on a fresh cell.
func TestExhaustionTimeMatchesConstantLoadLifetime(t *testing.T) {
	for _, m := range scaledAnalyticModels(t) {
		sd := m.(battery.SegmentDrainer)
		m.Reset()
		te := sd.ExhaustionTime(0.8)
		r, err := battery.ConstantLoadLifetime(m, 0.8, 1e6)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if !r.Exhausted {
			t.Fatalf("%s: battery survived", m.Name())
		}
		if math.Abs(te-r.Lifetime) > 1e-6*r.Lifetime {
			t.Fatalf("%s: ExhaustionTime = %v, simulated lifetime = %v", m.Name(), te, r.Lifetime)
		}
		m.Reset()
		if rest := sd.ExhaustionTime(0); !math.IsInf(rest, 1) {
			t.Fatalf("%s: ExhaustionTime(0) = %v, want +Inf", m.Name(), rest)
		}
	}
}

// TestSolveExhaustionRoot pins the shared root-finder on a known function.
func TestSolveExhaustionRoot(t *testing.T) {
	// f(t) = 100 - 3t - t^2 crosses zero at t = (-3 + sqrt(409))/2.
	root := battery.SolveExhaustion(func(tt float64) (float64, float64) {
		return 100 - 3*tt - tt*tt, -3 - 2*tt
	}, 1)
	want := (-3 + math.Sqrt(409)) / 2
	if math.Abs(root-want) > 1e-9 {
		t.Fatalf("root = %v, want %v", root, want)
	}
	if r := battery.SolveExhaustion(func(float64) (float64, float64) { return 1, 0 }, 1); !math.IsInf(r, 1) {
		t.Fatalf("root of a positive function = %v, want +Inf", r)
	}
}
