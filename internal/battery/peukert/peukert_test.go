package peukert

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"battsched/internal/battery"
	"battsched/internal/profile"
)

func TestNewRejectsBadParams(t *testing.T) {
	bad := []Params{
		{ReferenceCapacityCoulombs: 0, MaxCoulombs: 100, ReferenceCurrent: 1, Exponent: 1.1},
		{ReferenceCapacityCoulombs: 200, MaxCoulombs: 100, ReferenceCurrent: 1, Exponent: 1.1},
		{ReferenceCapacityCoulombs: 100, MaxCoulombs: 100, ReferenceCurrent: 0, Exponent: 1.1},
		{ReferenceCapacityCoulombs: 100, MaxCoulombs: 100, ReferenceCurrent: 1, Exponent: 0.9},
	}
	for i, p := range bad {
		if _, err := New(p); !errors.Is(err, ErrBadParams) {
			t.Errorf("case %d: New(%+v) err = %v, want ErrBadParams", i, p, err)
		}
	}
}

func TestReferenceCurrentDeliversReferenceCapacity(t *testing.T) {
	b := Default()
	r, err := battery.ConstantLoadLifetime(b, b.Params().ReferenceCurrent, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exhausted {
		t.Fatal("battery did not die")
	}
	if math.Abs(r.DeliveredCharge-b.Params().ReferenceCapacityCoulombs) > 1e-3*b.Params().ReferenceCapacityCoulombs {
		t.Fatalf("delivered at reference current = %v, want %v", r.DeliveredCharge, b.Params().ReferenceCapacityCoulombs)
	}
}

func TestHighCurrentDeliversLess(t *testing.T) {
	loads := []float64{0.5, 1.0, 2.0, 4.0}
	prev := math.Inf(1)
	for _, i := range loads {
		b := Default()
		r, err := battery.ConstantLoadLifetime(b, i, 1e7)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Exhausted {
			t.Fatalf("battery did not die at %v A", i)
		}
		if r.DeliveredCharge > prev+1e-6 {
			t.Fatalf("delivered charge increased with load at %v A", i)
		}
		prev = r.DeliveredCharge
	}
}

func TestLowCurrentCappedAtMaxCapacity(t *testing.T) {
	b := Default()
	r, err := battery.ConstantLoadLifetime(b, 0.01, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exhausted {
		t.Fatal("battery did not die")
	}
	if r.DeliveredCharge > b.MaxCapacity()+1e-6 {
		t.Fatalf("delivered %v exceeds max capacity %v", r.DeliveredCharge, b.MaxCapacity())
	}
	if r.DeliveredCharge < 0.99*b.MaxCapacity() {
		t.Fatalf("low-load delivered %v, want close to max %v", r.DeliveredCharge, b.MaxCapacity())
	}
}

func TestConstantLifetimeMatchesPeukertLaw(t *testing.T) {
	// For I above the point where the absolute cap binds, the lifetime must
	// satisfy L = Cref/Iref * (Iref/I)^k.
	b := Default()
	p := b.Params()
	const current = 2.0
	r, err := battery.ConstantLoadLifetime(b, current, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	want := p.ReferenceCapacityCoulombs / p.ReferenceCurrent * math.Pow(p.ReferenceCurrent/current, p.Exponent)
	if math.Abs(r.Lifetime-want) > 1e-3*want {
		t.Fatalf("lifetime = %v, Peukert's law predicts %v", r.Lifetime, want)
	}
}

func TestNoRecoveryEffect(t *testing.T) {
	// Unlike KiBaM/diffusion, resting does not restore anything: an
	// intermittent load delivers exactly the same charge as a continuous one.
	cont := Default()
	rc, err := battery.ConstantLoadLifetime(cont, 2.0, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	inter := Default()
	var active float64
	alive := true
	for alive {
		var sustained float64
		sustained, alive = inter.Drain(2.0, 10)
		active += sustained
		if alive {
			inter.Drain(0, 10)
		}
	}
	if math.Abs(active-rc.Lifetime) > 1e-6*rc.Lifetime+1e-6 {
		t.Fatalf("intermittent active time %v != continuous lifetime %v", active, rc.Lifetime)
	}
}

func TestResetDrainAfterDeathAndEdgeInputs(t *testing.T) {
	b := Default()
	b.Drain(1, 100)
	b.Reset()
	if b.DeliveredCharge() != 0 {
		t.Fatalf("delivered after reset = %v", b.DeliveredCharge())
	}
	for {
		if _, alive := b.Drain(3, 1000); !alive {
			break
		}
	}
	if s, alive := b.Drain(1, 1); s != 0 || alive {
		t.Fatalf("Drain after death = (%v,%v)", s, alive)
	}
	c := Default()
	if s, alive := c.Drain(1, 0); s != 0 || !alive {
		t.Fatalf("Drain(1,0) = (%v,%v)", s, alive)
	}
	if s, alive := c.Drain(-1, 7); s != 7 || !alive {
		t.Fatalf("Drain(-1,7) = (%v,%v)", s, alive)
	}
}

func TestNameAndString(t *testing.T) {
	b := Default()
	if b.Name() != "peukert" {
		t.Fatalf("Name = %q", b.Name())
	}
	if b.String() == "" {
		t.Fatal("empty String()")
	}
}

// Property: delivered charge is bounded by the maximum capacity and by the
// reference capacity scaled for the applied (constant) rate.
func TestPeukertBoundsProperty(t *testing.T) {
	f := func(x float64) bool {
		current := 0.1 + math.Abs(math.Mod(x, 5))
		b := Default()
		r, err := battery.ConstantLoadLifetime(b, current, 1e8)
		if err != nil || !r.Exhausted {
			return false
		}
		return r.DeliveredCharge <= b.MaxCapacity()+1e-6 && r.DeliveredCharge > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestRepetitionOperatorMatchesSegmentStepping checks the per-repetition
// budget increments reproduce segment-by-segment stepping, including the
// exact (not conservative) survival check.
func TestRepetitionOperatorMatchesSegmentStepping(t *testing.T) {
	p := profile.New()
	p.Append(30, 1.5)
	p.Append(20, 0.1)
	p.Append(10, 0.6)
	viaOperator := Default()
	viaSegments := Default()
	op := viaOperator.RepetitionOperator(p)
	reps := 0
	for reps < 40 && op.CanAdvance() {
		op.Advance()
		reps++
	}
	if reps < 10 {
		t.Fatalf("operator advanced only %d repetitions", reps)
	}
	for r := 0; r < reps; r++ {
		for _, s := range p.Segments {
			if _, alive := viaSegments.DrainSegment(s.Current, s.Duration); !alive {
				t.Fatalf("segment path died at repetition %d", r)
			}
		}
	}
	if math.Abs(viaOperator.DeliveredCharge()-viaSegments.DeliveredCharge()) > 1e-9*viaSegments.MaxCapacity() {
		t.Fatalf("delivered: operator %v vs segments %v", viaOperator.DeliveredCharge(), viaSegments.DeliveredCharge())
	}
	if math.Abs(viaOperator.weighted-viaSegments.weighted) > 1e-9*viaSegments.MaxCapacity() {
		t.Fatalf("weighted: operator %v vs segments %v", viaOperator.weighted, viaSegments.weighted)
	}
	// The Peukert survival check is exact: after CanAdvance trips, one more
	// repetition must indeed kill the segment-stepped battery.
	if reps < 40 {
		alive := true
		for _, s := range p.Segments {
			if _, alive = viaSegments.DrainSegment(s.Current, s.Duration); !alive {
				break
			}
		}
		if alive {
			t.Fatal("CanAdvance tripped but the next repetition was survivable")
		}
	}
}
