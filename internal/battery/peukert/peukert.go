// Package peukert implements a battery model based on Peukert's law, the
// simple empirical rate-capacity relation used by early battery-aware
// scheduling work ([7] in the paper). It captures the loss of deliverable
// capacity at high discharge rates but, unlike KiBaM and the diffusion model,
// has no recovery effect: it therefore serves as a baseline comparator in the
// battery-model cross-checks.
//
// Under a constant current I the deliverable capacity is
//
//	C(I) = C_ref * (I_ref / I)^(k-1)
//
// with k >= 1 the Peukert exponent. For time-varying loads the model
// integrates the rate-weighted consumption (I/I_ref)^(k-1) * I dt and declares
// the battery exhausted when it reaches C_ref. The delivered charge is capped
// at the theoretical maximum capacity so that arbitrarily small loads cannot
// extract more charge than the cell contains.
package peukert

import (
	"errors"
	"fmt"
	"math"

	"battsched/internal/battery"
	"battsched/internal/profile"
)

// Params configure the Peukert model.
type Params struct {
	// ReferenceCapacityCoulombs is the capacity C_ref delivered at the
	// reference current, in coulombs.
	ReferenceCapacityCoulombs float64
	// MaxCoulombs is the theoretical maximum capacity (cap on delivered
	// charge at vanishing loads), in coulombs.
	MaxCoulombs float64
	// ReferenceCurrent is I_ref in amperes.
	ReferenceCurrent float64
	// Exponent is the Peukert exponent k (>= 1; 1 means an ideal battery up
	// to MaxCoulombs).
	Exponent float64
}

// ErrBadParams is returned by New for invalid parameters.
var ErrBadParams = errors.New("peukert: invalid parameters")

// Battery is a Peukert's-law battery.
type Battery struct {
	params    Params
	weighted  float64 // rate-weighted consumption in coulombs
	delivered float64 // actual delivered charge in coulombs
	alive     bool
}

// The model registers itself so battery.New("peukert") and every -battery
// flag resolve it by name.
func init() { battery.Register("peukert", func() battery.Model { return Default() }) }

// Default returns a Peukert battery calibrated like the paper's cell:
// 1600 mAh nominal at a 1 A reference current, 2000 mAh maximum, exponent 1.15
// (typical for NiMH chemistry).
func Default() *Battery {
	b, err := New(Params{
		ReferenceCapacityCoulombs: battery.Coulombs(1600),
		MaxCoulombs:               battery.Coulombs(2000),
		ReferenceCurrent:          1.0,
		Exponent:                  1.15,
	})
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	return b
}

// New returns a fully charged Peukert battery.
func New(p Params) (*Battery, error) {
	if p.ReferenceCapacityCoulombs <= 0 || p.MaxCoulombs < p.ReferenceCapacityCoulombs ||
		p.ReferenceCurrent <= 0 || p.Exponent < 1 {
		return nil, fmt.Errorf("%w: %+v", ErrBadParams, p)
	}
	b := &Battery{params: p}
	b.Reset()
	return b, nil
}

// Name implements battery.Model.
func (b *Battery) Name() string { return "peukert" }

// Params returns the model parameters.
func (b *Battery) Params() Params { return b.params }

// Reset implements battery.Model.
func (b *Battery) Reset() {
	b.weighted = 0
	b.delivered = 0
	b.alive = true
}

// MaxCapacity implements battery.Model.
func (b *Battery) MaxCapacity() float64 { return b.params.MaxCoulombs }

// DeliveredCharge implements battery.Model.
func (b *Battery) DeliveredCharge() float64 { return b.delivered }

// weightRate returns the rate-weighted consumption rate (I/I_ref)^(k-1) * I
// of a constant current, in coulombs per second against the C_ref budget.
func (b *Battery) weightRate(current float64) float64 {
	if current <= 0 {
		return 0
	}
	return math.Pow(current/b.params.ReferenceCurrent, b.params.Exponent-1) * current
}

// Drain implements battery.Model. The consumption integrals are linear in
// time under a constant current, so Drain and DrainSegment coincide.
func (b *Battery) Drain(current, dt float64) (sustained float64, alive bool) {
	return b.DrainSegment(current, dt)
}

// DrainSegment implements battery.SegmentDrainer.
func (b *Battery) DrainSegment(current, dt float64) (sustained float64, alive bool) {
	if !b.alive {
		return 0, false
	}
	if dt <= 0 {
		return 0, true
	}
	if current < 0 {
		current = 0
	}
	tDeath := b.ExhaustionTime(current)
	if tDeath > dt {
		b.weighted += b.weightRate(current) * dt
		b.delivered += current * dt
		return dt, true
	}
	b.weighted += b.weightRate(current) * tDeath
	b.delivered += current * tDeath
	b.alive = false
	return tDeath, false
}

// ExhaustionTime implements battery.SegmentDrainer: the model has no
// recovery, so the time until either the rate-weighted budget or the
// absolute maximum capacity is exhausted is available in closed form.
func (b *Battery) ExhaustionTime(current float64) float64 {
	if !b.alive {
		return 0
	}
	if current <= 0 {
		return math.Inf(1)
	}
	tWeighted := math.Inf(1)
	if wr := b.weightRate(current); wr > 0 {
		tWeighted = (b.params.ReferenceCapacityCoulombs - b.weighted) / wr
	}
	tAbsolute := (b.params.MaxCoulombs - b.delivered) / current
	tDeath := math.Min(tWeighted, tAbsolute)
	if tDeath < 0 {
		return 0
	}
	return tDeath
}

// RepetitionOperator implements battery.RepetitionTransferer: one repetition
// simply adds the profile's rate-weighted and absolute charge to the two
// budgets, and both budgets are nondecreasing within a repetition, so the
// survival check is exact.
func (b *Battery) RepetitionOperator(p *profile.Profile) battery.RepetitionOperator {
	op := &repetitionOperator{b: b}
	for _, seg := range p.Segments {
		op.weighted += b.weightRate(seg.Current) * seg.Duration
		op.charge += seg.Current * seg.Duration
	}
	return op
}

// repetitionOperator is the transfer operator of one profile repetition on a
// Peukert battery: both consumption budgets advance by a precomputed amount.
type repetitionOperator struct {
	b                *Battery
	weighted, charge float64
}

// CanAdvance implements battery.RepetitionOperator.
func (o *repetitionOperator) CanAdvance() bool {
	b := o.b
	return b.alive &&
		b.weighted+o.weighted < b.params.ReferenceCapacityCoulombs &&
		b.delivered+o.charge < b.params.MaxCoulombs
}

// Advance implements battery.RepetitionOperator.
func (o *repetitionOperator) Advance() {
	b := o.b
	b.weighted += o.weighted
	b.delivered += o.charge
}

// String implements fmt.Stringer.
func (b *Battery) String() string {
	return fmt.Sprintf("Peukert(k=%.2f Cref=%.0fmAh max=%.0fmAh delivered=%.0fmAh)",
		b.params.Exponent, battery.MAh(b.params.ReferenceCapacityCoulombs),
		battery.MAh(b.params.MaxCoulombs), battery.MAh(b.delivered))
}

// compile-time interface checks
var (
	_ battery.Model                = (*Battery)(nil)
	_ battery.SegmentDrainer       = (*Battery)(nil)
	_ battery.RepetitionTransferer = (*Battery)(nil)
)
