// Package peukert implements a battery model based on Peukert's law, the
// simple empirical rate-capacity relation used by early battery-aware
// scheduling work ([7] in the paper). It captures the loss of deliverable
// capacity at high discharge rates but, unlike KiBaM and the diffusion model,
// has no recovery effect: it therefore serves as a baseline comparator in the
// battery-model cross-checks.
//
// Under a constant current I the deliverable capacity is
//
//	C(I) = C_ref * (I_ref / I)^(k-1)
//
// with k >= 1 the Peukert exponent. For time-varying loads the model
// integrates the rate-weighted consumption (I/I_ref)^(k-1) * I dt and declares
// the battery exhausted when it reaches C_ref. The delivered charge is capped
// at the theoretical maximum capacity so that arbitrarily small loads cannot
// extract more charge than the cell contains.
package peukert

import (
	"errors"
	"fmt"
	"math"

	"battsched/internal/battery"
)

// Params configure the Peukert model.
type Params struct {
	// ReferenceCapacityCoulombs is the capacity C_ref delivered at the
	// reference current, in coulombs.
	ReferenceCapacityCoulombs float64
	// MaxCoulombs is the theoretical maximum capacity (cap on delivered
	// charge at vanishing loads), in coulombs.
	MaxCoulombs float64
	// ReferenceCurrent is I_ref in amperes.
	ReferenceCurrent float64
	// Exponent is the Peukert exponent k (>= 1; 1 means an ideal battery up
	// to MaxCoulombs).
	Exponent float64
}

// ErrBadParams is returned by New for invalid parameters.
var ErrBadParams = errors.New("peukert: invalid parameters")

// Battery is a Peukert's-law battery.
type Battery struct {
	params    Params
	weighted  float64 // rate-weighted consumption in coulombs
	delivered float64 // actual delivered charge in coulombs
	alive     bool
}

// Default returns a Peukert battery calibrated like the paper's cell:
// 1600 mAh nominal at a 1 A reference current, 2000 mAh maximum, exponent 1.15
// (typical for NiMH chemistry).
func Default() *Battery {
	b, err := New(Params{
		ReferenceCapacityCoulombs: battery.Coulombs(1600),
		MaxCoulombs:               battery.Coulombs(2000),
		ReferenceCurrent:          1.0,
		Exponent:                  1.15,
	})
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	return b
}

// New returns a fully charged Peukert battery.
func New(p Params) (*Battery, error) {
	if p.ReferenceCapacityCoulombs <= 0 || p.MaxCoulombs < p.ReferenceCapacityCoulombs ||
		p.ReferenceCurrent <= 0 || p.Exponent < 1 {
		return nil, fmt.Errorf("%w: %+v", ErrBadParams, p)
	}
	b := &Battery{params: p}
	b.Reset()
	return b, nil
}

// Name implements battery.Model.
func (b *Battery) Name() string { return "peukert" }

// Params returns the model parameters.
func (b *Battery) Params() Params { return b.params }

// Reset implements battery.Model.
func (b *Battery) Reset() {
	b.weighted = 0
	b.delivered = 0
	b.alive = true
}

// MaxCapacity implements battery.Model.
func (b *Battery) MaxCapacity() float64 { return b.params.MaxCoulombs }

// DeliveredCharge implements battery.Model.
func (b *Battery) DeliveredCharge() float64 { return b.delivered }

// Drain implements battery.Model.
func (b *Battery) Drain(current, dt float64) (sustained float64, alive bool) {
	if !b.alive {
		return 0, false
	}
	if dt <= 0 {
		return 0, true
	}
	if current < 0 {
		current = 0
	}
	weightRate := 0.0
	if current > 0 {
		weightRate = math.Pow(current/b.params.ReferenceCurrent, b.params.Exponent-1) * current
	}
	// Time until either the rate-weighted budget or the absolute maximum
	// capacity is exhausted.
	tWeighted := math.Inf(1)
	if weightRate > 0 {
		tWeighted = (b.params.ReferenceCapacityCoulombs - b.weighted) / weightRate
	}
	tAbsolute := math.Inf(1)
	if current > 0 {
		tAbsolute = (b.params.MaxCoulombs - b.delivered) / current
	}
	tDeath := math.Min(tWeighted, tAbsolute)
	if tDeath > dt {
		b.weighted += weightRate * dt
		b.delivered += current * dt
		return dt, true
	}
	if tDeath < 0 {
		tDeath = 0
	}
	b.weighted += weightRate * tDeath
	b.delivered += current * tDeath
	b.alive = false
	return tDeath, false
}

// String implements fmt.Stringer.
func (b *Battery) String() string {
	return fmt.Sprintf("Peukert(k=%.2f Cref=%.0fmAh max=%.0fmAh delivered=%.0fmAh)",
		b.params.Exponent, battery.MAh(b.params.ReferenceCapacityCoulombs),
		battery.MAh(b.params.MaxCoulombs), battery.MAh(b.delivered))
}

// compile-time interface check
var _ battery.Model = (*Battery)(nil)
