package battery

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrUnknownModel is wrapped by New for names no model registered under.
var ErrUnknownModel = errors.New("battery: unknown model")

var (
	registryMu sync.RWMutex
	registry   = map[string]func() Model{}
)

// Register makes a battery model constructor available under name. Model
// sub-packages self-register from an init function (the image/png pattern),
// so importing a model package is all it takes to make battery.New, the
// experiment drivers' -battery flags and the scenario grid accept its name.
// Register panics on an empty name, a nil factory or a duplicate name.
func Register(name string, factory func() Model) {
	if name == "" {
		panic("battery: Register with empty model name")
	}
	if factory == nil {
		panic(fmt.Sprintf("battery: Register(%q) with nil factory", name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("battery: Register(%q) called twice", name))
	}
	registry[name] = factory
}

// New returns a fresh instance of the model registered under name (battery
// models are stateful, so every simulation needs its own). Unknown names
// return an error wrapping ErrUnknownModel that lists the registered names.
func New(name string) (Model, error) {
	registryMu.RLock()
	factory, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (registered: %s)", ErrUnknownModel, name, strings.Join(Names(), ", "))
	}
	return factory(), nil
}

// Names returns the registered model names in sorted order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
