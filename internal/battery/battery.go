// Package battery defines the common interface implemented by all battery
// models (KiBaM, diffusion, stochastic, Peukert) and the simulation driver
// that plays a load-current profile against a model until the battery is
// exhausted, reporting lifetime and delivered charge — the two quantities of
// the paper's Table 2.
package battery

import (
	"errors"
	"fmt"
	"math"

	"battsched/internal/profile"
)

// Model is a battery whose internal state evolves under a piecewise-constant
// load current. Implementations are not safe for concurrent use.
type Model interface {
	// Name returns a short identifier ("kibam", "diffusion", ...).
	Name() string
	// Reset restores the fully-charged initial state.
	Reset()
	// Drain applies a constant load of `current` amperes for `dt` seconds.
	// It returns the time actually sustained before exhaustion (== dt when
	// the battery survives the whole interval) and whether the battery is
	// still alive afterwards.
	Drain(current, dt float64) (sustained float64, alive bool)
	// MaxCapacity returns the theoretical maximum extractable charge in
	// coulombs (the charge delivered under an infinitesimal load).
	MaxCapacity() float64
	// DeliveredCharge returns the charge delivered since the last Reset, in
	// coulombs.
	DeliveredCharge() float64
}

// Coulombs per milliampere-hour.
const CoulombsPerMAh = 3.6

// MAh converts coulombs to milliampere-hours.
func MAh(coulombs float64) float64 { return coulombs / CoulombsPerMAh }

// Coulombs converts milliampere-hours to coulombs.
func Coulombs(mAh float64) float64 { return mAh * CoulombsPerMAh }

// Result summarises a lifetime simulation.
type Result struct {
	// Lifetime is the time until battery exhaustion, in seconds.
	Lifetime float64
	// DeliveredCharge is the charge extracted before exhaustion, in coulombs.
	DeliveredCharge float64
	// Exhausted reports whether the battery actually died (false when the
	// simulation hit its horizon first).
	Exhausted bool
	// Repetitions is the number of complete profile repetitions sustained.
	Repetitions int
}

// LifetimeMinutes returns the lifetime in minutes (the unit of Table 2).
func (r Result) LifetimeMinutes() float64 { return r.Lifetime / 60 }

// DeliveredMAh returns the delivered charge in mAh (the unit of Table 2).
func (r Result) DeliveredMAh() float64 { return MAh(r.DeliveredCharge) }

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("Result(lifetime=%.1fmin delivered=%.0fmAh exhausted=%v)",
		r.LifetimeMinutes(), r.DeliveredMAh(), r.Exhausted)
}

// Errors returned by the simulation driver.
var (
	ErrNilModel   = errors.New("battery: nil model")
	ErrBadProfile = errors.New("battery: invalid profile")
	ErrBadHorizon = errors.New("battery: horizon must be positive")
)

// SimulateOptions tunes SimulateUntilExhausted.
type SimulateOptions struct {
	// MaxTime is the simulation horizon in seconds; the run stops there even
	// if the battery is still alive. Defaults to 48 hours.
	MaxTime float64
	// MaxStep subdivides long constant-current segments so that models with
	// internal time discretisation (the stochastic model) and the exhaustion
	// detection stay accurate. Defaults to 1 second.
	MaxStep float64
}

func (o *SimulateOptions) setDefaults() {
	if o.MaxTime <= 0 {
		o.MaxTime = 48 * 3600
	}
	if o.MaxStep <= 0 {
		o.MaxStep = 1.0
	}
}

// SimulateUntilExhausted plays the profile periodically (repeating it
// back-to-back) against the model until the battery is exhausted or the
// horizon is reached. The model is Reset before the run.
func SimulateUntilExhausted(m Model, p *profile.Profile, opts SimulateOptions) (Result, error) {
	if m == nil {
		return Result{}, ErrNilModel
	}
	if err := p.Validate(); err != nil {
		return Result{}, fmt.Errorf("%w: %v", ErrBadProfile, err)
	}
	opts.setDefaults()
	m.Reset()

	var res Result
	t := 0.0
	for t < opts.MaxTime {
		completed := true
		for _, seg := range p.Segments {
			remaining := seg.Duration
			for remaining > 1e-12 {
				dt := math.Min(remaining, opts.MaxStep)
				if t+dt > opts.MaxTime {
					dt = opts.MaxTime - t
					if dt <= 0 {
						completed = false
						break
					}
				}
				sustained, alive := m.Drain(seg.Current, dt)
				t += sustained
				remaining -= dt
				if !alive {
					res.Lifetime = t
					res.DeliveredCharge = m.DeliveredCharge()
					res.Exhausted = true
					return res, nil
				}
			}
			if !completed {
				break
			}
		}
		if !completed {
			break
		}
		res.Repetitions++
	}
	res.Lifetime = t
	res.DeliveredCharge = m.DeliveredCharge()
	res.Exhausted = false
	return res, nil
}

// ConstantLoadLifetime returns the lifetime and delivered charge of the model
// under a constant current (amperes), up to maxTime seconds.
func ConstantLoadLifetime(m Model, current, maxTime float64) (Result, error) {
	if maxTime <= 0 {
		return Result{}, ErrBadHorizon
	}
	p := profile.Constant(current, maxTime)
	return SimulateUntilExhausted(m, p, SimulateOptions{MaxTime: maxTime})
}

// CurvePoint is one point of a load versus delivered-capacity curve.
type CurvePoint struct {
	// Current is the constant load in amperes.
	Current float64
	// DeliveredMAh is the charge delivered before exhaustion, in mAh.
	DeliveredMAh float64
	// LifetimeMinutes is the corresponding lifetime.
	LifetimeMinutes float64
}

// DeliveredCapacityCurve sweeps constant loads and returns the delivered
// capacity at each, reproducing the battery characterisation curve the paper
// uses to define maximum capacity (extrapolation to zero load) and available
// charge (extrapolation to infinite load).
func DeliveredCapacityCurve(m Model, currents []float64, maxTime float64) ([]CurvePoint, error) {
	out := make([]CurvePoint, 0, len(currents))
	for _, c := range currents {
		r, err := ConstantLoadLifetime(m, c, maxTime)
		if err != nil {
			return nil, err
		}
		out = append(out, CurvePoint{Current: c, DeliveredMAh: r.DeliveredMAh(), LifetimeMinutes: r.LifetimeMinutes()})
	}
	return out, nil
}
