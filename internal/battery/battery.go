// Package battery defines the common interface implemented by all battery
// models (KiBaM, diffusion, stochastic, Peukert) and the simulation driver
// that plays a load-current profile against a model until the battery is
// exhausted, reporting lifetime and delivered charge — the two quantities of
// the paper's Table 2.
package battery

import (
	"errors"
	"fmt"
	"math"

	"battsched/internal/obs"
	"battsched/internal/profile"
)

// Model is a battery whose internal state evolves under a piecewise-constant
// load current. Implementations are not safe for concurrent use.
type Model interface {
	// Name returns a short identifier ("kibam", "diffusion", ...).
	Name() string
	// Reset restores the fully-charged initial state.
	Reset()
	// Drain applies a constant load of `current` amperes for `dt` seconds.
	// It returns the time actually sustained before exhaustion (== dt when
	// the battery survives the whole interval) and whether the battery is
	// still alive afterwards.
	Drain(current, dt float64) (sustained float64, alive bool)
	// MaxCapacity returns the theoretical maximum extractable charge in
	// coulombs (the charge delivered under an infinitesimal load).
	MaxCapacity() float64
	// DeliveredCharge returns the charge delivered since the last Reset, in
	// coulombs.
	DeliveredCharge() float64
}

// SegmentDrainer is the optional analytic fast-path interface: models whose
// state admits an exact closed-form update under a constant current implement
// it, and SimulateUntilExhausted then advances them one whole profile segment
// at a time instead of subdividing segments into MaxStep substeps.
type SegmentDrainer interface {
	Model
	// DrainSegment advances the state exactly over a whole constant-current
	// segment of length dt, with the same contract as Drain: it returns the
	// time sustained (== dt when the battery survives) and liveness.
	DrainSegment(current, dt float64) (sustained float64, alive bool)
	// ExhaustionTime returns the time until exhaustion if the given constant
	// current were applied from the current state, +Inf when the model never
	// exhausts under it (e.g. a zero load) and 0 when already dead. It does
	// not modify the state.
	ExhaustionTime(current float64) float64
}

// RepetitionOperator advances a model by whole repetitions of a fixed
// profile. One repetition of a piecewise-constant profile is an affine map on
// the state of the closed-form models (a 2-vector for KiBaM, a (1+Terms)-
// vector for diffusion, two scalar budgets for Peukert), so the operator is
// precomputed once per simulation and applied in O(state) per repetition.
type RepetitionOperator interface {
	// CanAdvance conservatively reports whether the model survives one full
	// profile repetition from its current state. It may return false for a
	// survivable repetition (the driver then falls back to segment stepping)
	// but must never return true for a fatal one.
	CanAdvance() bool
	// Advance applies one full repetition to the model state. It must only
	// be called after CanAdvance returned true.
	Advance()
}

// RepetitionTransferer is implemented by SegmentDrainers that can precompute
// the per-repetition transfer operator of a profile.
type RepetitionTransferer interface {
	SegmentDrainer
	// RepetitionOperator builds the transfer operator of one full repetition
	// of p for this model instance.
	RepetitionOperator(p *profile.Profile) RepetitionOperator
}

// AnalyticGater is the optional per-instance gate on the analytic path.
// SegmentDrainer is a type-level property, but for some models the closed
// forms only cover part of the configuration space — the stochastic model's
// DrainSegment is exact in expected-value mode but its Monte Carlo mode is
// defined one RNG draw per slot and must keep the stepped path. Models with
// such a split implement AnalyticGater; the drivers consult it before
// dispatching to the analytic path. Models that do not implement it are
// analytic whenever they implement SegmentDrainer.
type AnalyticGater interface {
	// AnalyticOK reports whether this instance's configuration is covered by
	// its analytic fast path.
	AnalyticOK() bool
}

// analyticDrainer returns the analytic fast-path view of m, if the current
// options and the model's own gate select it: MaxStep must not force the
// stepped path, the model must implement SegmentDrainer, and an AnalyticGater
// model must accept its configuration.
func analyticDrainer(m Model, maxStep float64) (SegmentDrainer, bool) {
	if maxStep > 0 {
		return nil, false
	}
	sd, ok := m.(SegmentDrainer)
	if !ok {
		return nil, false
	}
	if g, ok := m.(AnalyticGater); ok && !g.AnalyticOK() {
		return nil, false
	}
	return sd, true
}

// Coulombs per milliampere-hour.
const CoulombsPerMAh = 3.6

// MAh converts coulombs to milliampere-hours.
func MAh(coulombs float64) float64 { return coulombs / CoulombsPerMAh }

// Coulombs converts milliampere-hours to coulombs.
func Coulombs(mAh float64) float64 { return mAh * CoulombsPerMAh }

// Result summarises a lifetime simulation.
type Result struct {
	// Lifetime is the time until battery exhaustion, in seconds.
	Lifetime float64
	// DeliveredCharge is the charge extracted before exhaustion, in coulombs.
	DeliveredCharge float64
	// Exhausted reports whether the battery actually died (false when the
	// simulation hit its horizon first).
	Exhausted bool
	// Repetitions is the number of complete profile repetitions sustained.
	Repetitions int
}

// LifetimeMinutes returns the lifetime in minutes (the unit of Table 2).
func (r Result) LifetimeMinutes() float64 { return r.Lifetime / 60 }

// DeliveredMAh returns the delivered charge in mAh (the unit of Table 2).
func (r Result) DeliveredMAh() float64 { return MAh(r.DeliveredCharge) }

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("Result(lifetime=%.1fmin delivered=%.0fmAh exhausted=%v)",
		r.LifetimeMinutes(), r.DeliveredMAh(), r.Exhausted)
}

// Errors returned by the simulation driver.
var (
	ErrNilModel   = errors.New("battery: nil model")
	ErrBadProfile = errors.New("battery: invalid profile")
	ErrBadHorizon = errors.New("battery: horizon must be positive")
	ErrNoProgress = errors.New("battery: model under-sustained a step it survived")
)

// SimulateOptions tunes SimulateUntilExhausted.
type SimulateOptions struct {
	// MaxTime is the simulation horizon in seconds; the run stops there even
	// if the battery is still alive. Defaults to 48 hours.
	MaxTime float64
	// MaxStep selects the simulation path. Zero (the default) dispatches on
	// the model: models implementing SegmentDrainer take the analytic path
	// (whole constant-current segments, per-repetition transfer operators,
	// root-finding for the exhaustion instant); other models (the stochastic
	// model, with its internal time discretisation) take the stepped path
	// with a 1 s substep. A positive value forces the stepped path with that
	// substep for every model — the reference the accuracy tests compare the
	// analytic path against.
	MaxStep float64
}

func (o *SimulateOptions) setDefaults() {
	if o.MaxTime <= 0 {
		o.MaxTime = 48 * 3600
	}
}

// SimulateUntilExhausted plays the profile periodically (repeating it
// back-to-back) against the model until the battery is exhausted or the
// horizon is reached. The model is Reset before the run.
//
// Models implementing SegmentDrainer are simulated analytically unless
// MaxStep forces the stepped path: each constant-current segment is applied
// exactly in one closed-form update, and when the model also implements
// RepetitionTransferer whole profile repetitions are applied through the
// precomputed affine transfer operator in O(state) time while the operator's
// conservative check proves the battery survives them, falling back to
// segment stepping only around the horizon and the exhaustion repetition.
func SimulateUntilExhausted(m Model, p *profile.Profile, opts SimulateOptions) (Result, error) {
	if m == nil {
		return Result{}, ErrNilModel
	}
	if err := p.Validate(); err != nil {
		return Result{}, fmt.Errorf("%w: %v", ErrBadProfile, err)
	}
	opts.setDefaults()
	if sd, ok := analyticDrainer(m, opts.MaxStep); ok {
		obs.Sim.BatteryAnalytic.Add(1)
		return simulateAnalytic(sd, p, opts)
	}
	if opts.MaxStep <= 0 {
		opts.MaxStep = 1.0
	}
	obs.Sim.BatteryStepped.Add(1)
	return simulateStepped(m, p, opts)
}

// simulateAnalytic drives a SegmentDrainer: whole repetitions through the
// transfer operator while its conservative survival check holds, whole
// segments otherwise, with the exhaustion instant located by the model's
// closed-form root-finding inside the final segment.
func simulateAnalytic(m SegmentDrainer, p *profile.Profile, opts SimulateOptions) (Result, error) {
	m.Reset()
	var res Result
	t := 0.0
	period := p.Duration()
	var op RepetitionOperator
	if rt, ok := m.(RepetitionTransferer); ok {
		op = rt.RepetitionOperator(p)
	}
	for t < opts.MaxTime {
		if op != nil && t+period <= opts.MaxTime && op.CanAdvance() {
			op.Advance()
			t += period
			res.Repetitions++
			continue
		}
		completed := true
		for _, seg := range p.Segments {
			dt := seg.Duration
			if t+dt > opts.MaxTime {
				dt = opts.MaxTime - t
				completed = false
				if dt <= 0 {
					break
				}
			}
			sustained, alive := m.DrainSegment(seg.Current, dt)
			t += sustained
			if !alive {
				res.Lifetime = t
				res.DeliveredCharge = m.DeliveredCharge()
				res.Exhausted = true
				return res, nil
			}
			// The analytic contract is exact whole-segment advance: a
			// surviving DrainSegment must sustain the full dt, or profile
			// time and battery time drift apart (and a zero sustain would
			// loop forever).
			if sustained < dt {
				return res, fmt.Errorf("%w: %s sustained %v of a %v s segment", ErrNoProgress, m.Name(), sustained, dt)
			}
			if !completed {
				break
			}
		}
		if !completed {
			break
		}
		res.Repetitions++
	}
	res.Lifetime = t
	res.DeliveredCharge = m.DeliveredCharge()
	return res, nil
}

// simulateStepped drives any model by subdividing segments into MaxStep
// substeps (the pre-analytic behaviour, and the only path for models with an
// internal time discretisation).
func simulateStepped(m Model, p *profile.Profile, opts SimulateOptions) (Result, error) {
	m.Reset()
	var res Result
	t := 0.0
	for t < opts.MaxTime {
		completed := true
		for _, seg := range p.Segments {
			remaining := seg.Duration
			for remaining > 1e-12 {
				dt := math.Min(remaining, opts.MaxStep)
				if t+dt > opts.MaxTime {
					dt = opts.MaxTime - t
					if dt <= 0 {
						completed = false
						break
					}
				}
				sustained, alive := m.Drain(seg.Current, dt)
				t += sustained
				// Deduct the sustained time, not the requested dt: a model
				// that sustains only part of a step must see the remainder of
				// the segment again, or profile time and battery time drift
				// apart.
				remaining -= sustained
				if !alive {
					res.Lifetime = t
					res.DeliveredCharge = m.DeliveredCharge()
					res.Exhausted = true
					return res, nil
				}
				if sustained <= 0 {
					return res, fmt.Errorf("%w: %s sustained nothing at %v A for %v s", ErrNoProgress, m.Name(), seg.Current, dt)
				}
			}
			if !completed {
				break
			}
		}
		if !completed {
			break
		}
		res.Repetitions++
	}
	res.Lifetime = t
	res.DeliveredCharge = m.DeliveredCharge()
	res.Exhausted = false
	return res, nil
}

// SolveExhaustion locates the exhaustion instant of a closed-form model: the
// time t > 0 at which the survival margin f crosses zero, given f(0) > 0.
// f returns the margin and its time derivative; guess seeds the bracket. The
// bracket [lo, hi] is grown by doubling until f(hi) <= 0 and then tightened
// by Newton steps that fall back to bisection whenever a step leaves the
// bracket, so convergence is quadratic near the root but never worse than
// bisection. Returns +Inf when no crossing is found (the model never
// exhausts under this load).
func SolveExhaustion(f func(t float64) (margin, deriv float64), guess float64) float64 {
	if !(guess > 0) || math.IsInf(guess, 0) {
		guess = 1
	}
	lo, hi := 0.0, guess
	v, _ := f(hi)
	for doubles := 0; v > 0; doubles++ {
		if doubles > 200 || math.IsNaN(v) {
			return math.Inf(1)
		}
		lo = hi
		hi *= 2
		v, _ = f(hi)
	}
	t := 0.5 * (lo + hi)
	for iter := 0; iter < 100 && hi-lo > 1e-14*hi; iter++ {
		v, d := f(t)
		if v == 0 {
			return t
		}
		if v > 0 {
			lo = t
		} else {
			hi = t
		}
		next := 0.5 * (lo + hi)
		if d != 0 {
			if n := t - v/d; n > lo && n < hi {
				next = n
			}
		}
		t = next
	}
	return 0.5 * (lo + hi)
}

// ConstantLoadLifetime returns the lifetime and delivered charge of the model
// under a constant current (amperes), up to maxTime seconds.
func ConstantLoadLifetime(m Model, current, maxTime float64) (Result, error) {
	return ConstantLoadLifetimeOpts(m, current, SimulateOptions{MaxTime: maxTime})
}

// ConstantLoadLifetimeOpts is ConstantLoadLifetime with explicit simulation
// options (opts.MaxTime is the horizon and must be positive).
func ConstantLoadLifetimeOpts(m Model, current float64, opts SimulateOptions) (Result, error) {
	if opts.MaxTime <= 0 {
		return Result{}, ErrBadHorizon
	}
	p := profile.Constant(current, opts.MaxTime)
	return SimulateUntilExhausted(m, p, opts)
}

// CurvePoint is one point of a load versus delivered-capacity curve.
type CurvePoint struct {
	// Current is the constant load in amperes.
	Current float64
	// DeliveredMAh is the charge delivered before exhaustion, in mAh.
	DeliveredMAh float64
	// LifetimeMinutes is the corresponding lifetime.
	LifetimeMinutes float64
}

// DeliveredCapacityCurve sweeps constant loads and returns the delivered
// capacity at each, reproducing the battery characterisation curve the paper
// uses to define maximum capacity (extrapolation to zero load) and available
// charge (extrapolation to infinite load).
func DeliveredCapacityCurve(m Model, currents []float64, maxTime float64) ([]CurvePoint, error) {
	out := make([]CurvePoint, 0, len(currents))
	for _, c := range currents {
		r, err := ConstantLoadLifetime(m, c, maxTime)
		if err != nil {
			return nil, err
		}
		out = append(out, CurvePoint{Current: c, DeliveredMAh: r.DeliveredMAh(), LifetimeMinutes: r.LifetimeMinutes()})
	}
	return out, nil
}
