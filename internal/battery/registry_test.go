package battery_test

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"battsched/internal/battery"
	_ "battsched/internal/battery/diffusion"
	_ "battsched/internal/battery/kibam"
	_ "battsched/internal/battery/peukert"
	_ "battsched/internal/battery/stochastic"
)

// TestRegistryNames checks that importing the model sub-packages registers
// all four paper models under their canonical names, sorted.
func TestRegistryNames(t *testing.T) {
	want := []string{"diffusion", "kibam", "peukert", "stochastic"}
	if got := battery.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

// TestRegistryNew checks that New returns fresh, working instances.
func TestRegistryNew(t *testing.T) {
	for _, name := range battery.Names() {
		a, err := battery.New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if a.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, a.Name())
		}
		if a.MaxCapacity() <= 0 {
			t.Fatalf("New(%q): bad model", name)
		}
		b, err := battery.New(name)
		if err != nil {
			t.Fatal(err)
		}
		if a == b {
			t.Fatalf("New(%q) returned a shared instance", name)
		}
	}
}

// TestRegistryUnknown checks the error contract: unknown names report
// ErrUnknownModel and list every registered name, so CLI users see the valid
// choices instead of a silent default.
func TestRegistryUnknown(t *testing.T) {
	_, err := battery.New("bogus")
	if !errors.Is(err, battery.ErrUnknownModel) {
		t.Fatalf("err = %v, want ErrUnknownModel", err)
	}
	for _, name := range battery.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list registered model %q", err, name)
		}
	}
}

// TestRegisterPanics pins the registration misuse contracts.
func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("empty name", func() { battery.Register("", func() battery.Model { return nil }) })
	mustPanic("nil factory", func() { battery.Register("x-nil", nil) })
	mustPanic("duplicate", func() { battery.Register("kibam", func() battery.Model { return nil }) })
}
