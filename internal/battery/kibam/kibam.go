// Package kibam implements the Kinetic Battery Model (KiBaM) of Manwell and
// McGowan, the two-well model the paper uses to explain its scheduling
// guidelines: an available-charge well that feeds the load directly and a
// bound-charge well that replenishes the available well at a rate
// proportional to the difference in well heights (the "recovery effect").
// The battery is exhausted when the available-charge well is empty even
// though charge may remain in the bound well.
package kibam

import (
	"errors"
	"fmt"
	"math"

	"battsched/internal/battery"
	"battsched/internal/profile"
)

// Params are the KiBaM parameters.
type Params struct {
	// CapacityCoulombs is the total (theoretical maximum) charge of the
	// battery in coulombs: the charge delivered under an infinitesimal load.
	CapacityCoulombs float64
	// C is the fraction of the total capacity held in the available-charge
	// well, in (0, 1).
	C float64
	// K is the rate constant governing charge flow between the wells, in 1/s.
	K float64
}

// Errors returned by New.
var ErrBadParams = errors.New("kibam: invalid parameters")

// Battery is a KiBaM battery instance. The zero value is not usable; use New
// or Default.
type Battery struct {
	params Params
	kp     float64 // k' = K / (C * (1-C))

	y1        float64 // available charge (coulombs)
	y2        float64 // bound charge (coulombs)
	delivered float64 // coulombs delivered since Reset
	alive     bool
}

// The model registers itself so battery.New("kibam") and every -battery flag
// resolve it by name.
func init() { battery.Register("kibam", func() battery.Model { return Default() }) }

// Default returns a KiBaM battery calibrated for the paper's cell: a 1.2 V
// AAA NiMH battery with a maximum capacity of 2000 mAh. The well split and
// rate constant are chosen so that the nominal (≈1 A rate) delivered capacity
// is about 1600 mAh, matching the nominal capacity quoted in the paper.
func Default() *Battery {
	b, err := New(Params{
		CapacityCoulombs: battery.Coulombs(2000), // 7200 C
		C:                0.5,
		K:                2.2e-4,
	})
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	return b
}

// New returns a KiBaM battery with the given parameters, fully charged.
func New(p Params) (*Battery, error) {
	if p.CapacityCoulombs <= 0 || p.C <= 0 || p.C >= 1 || p.K <= 0 {
		return nil, fmt.Errorf("%w: %+v", ErrBadParams, p)
	}
	b := &Battery{params: p, kp: p.K / (p.C * (1 - p.C))}
	b.Reset()
	return b, nil
}

// Name implements battery.Model.
func (b *Battery) Name() string { return "kibam" }

// Params returns the model parameters.
func (b *Battery) Params() Params { return b.params }

// Reset implements battery.Model.
func (b *Battery) Reset() {
	b.y1 = b.params.C * b.params.CapacityCoulombs
	b.y2 = (1 - b.params.C) * b.params.CapacityCoulombs
	b.delivered = 0
	b.alive = true
}

// MaxCapacity implements battery.Model.
func (b *Battery) MaxCapacity() float64 { return b.params.CapacityCoulombs }

// DeliveredCharge implements battery.Model.
func (b *Battery) DeliveredCharge() float64 { return b.delivered }

// AvailableCharge returns the charge currently in the available well, in
// coulombs.
func (b *Battery) AvailableCharge() float64 { return math.Max(b.y1, 0) }

// BoundCharge returns the charge currently in the bound well, in coulombs.
func (b *Battery) BoundCharge() float64 { return math.Max(b.y2, 0) }

// StateOfCharge returns the fraction of the total capacity still in the
// battery (both wells), in [0, 1].
func (b *Battery) StateOfCharge() float64 {
	return math.Max(b.y1+b.y2, 0) / b.params.CapacityCoulombs
}

// solveConst evaluates the closed-form KiBaM solution after drawing a
// constant current i for time t starting from the current state, without
// modifying the state.
func (b *Battery) solveConst(i, t float64) (y1, y2 float64) {
	kp := b.kp
	c := b.params.C
	y10, y20 := b.y1, b.y2
	y0 := y10 + y20
	e := math.Exp(-kp * t)
	r := (kp*t - 1 + e) / kp
	y1 = y10*e + (y0*kp*c-i)*(1-e)/kp - i*c*r
	y2 = y20*e + y0*(1-c)*(1-e) - i*(1-c)*r
	return y1, y2
}

// Drain implements battery.Model. The closed-form solution is exact for any
// dt, so Drain and DrainSegment coincide.
func (b *Battery) Drain(current, dt float64) (sustained float64, alive bool) {
	return b.DrainSegment(current, dt)
}

// DrainSegment implements battery.SegmentDrainer: it applies the closed-form
// constant-current solution over the whole segment; if the available well
// would empty during the interval, the exhaustion instant is located by
// ExhaustionTime and only the sustained portion is applied.
func (b *Battery) DrainSegment(current, dt float64) (sustained float64, alive bool) {
	if !b.alive {
		return 0, false
	}
	if dt <= 0 {
		return 0, true
	}
	if current < 0 {
		current = 0
	}
	y1, y2 := b.solveConst(current, dt)
	if y1 > 0 {
		b.y1, b.y2 = y1, y2
		b.delivered += current * dt
		return dt, true
	}
	tDeath := b.ExhaustionTime(current)
	if tDeath > dt {
		tDeath = dt
	}
	y1, y2 = b.solveConst(current, tDeath)
	b.y1, b.y2 = math.Max(y1, 0), math.Max(y2, 0)
	b.delivered += current * tDeath
	b.alive = false
	return tDeath, false
}

// ExhaustionTime implements battery.SegmentDrainer: the root of y1(t) = 0
// under a constant current, found by Newton iteration on the closed form with
// a bisection safeguard.
func (b *Battery) ExhaustionTime(current float64) float64 {
	if !b.alive {
		return 0
	}
	if current <= 0 {
		// Rest only moves charge between the wells; the available well never
		// empties.
		return math.Inf(1)
	}
	if b.y1 <= 0 {
		return 0
	}
	kp, c := b.kp, b.params.C
	y10, y20 := b.y1, b.y2
	y0 := y10 + y20
	return battery.SolveExhaustion(func(t float64) (float64, float64) {
		e := math.Exp(-kp * t)
		r := (kp*t - 1 + e) / kp
		y1 := y10*e + (y0*kp*c-current)*(1-e)/kp - current*c*r
		d := -kp*e*y10 + (y0*kp*c-current)*e - current*c*(1-e)
		return y1, d
	}, y10/current)
}

// RepetitionOperator implements battery.RepetitionTransferer: one full
// repetition of p is the composition of its segments' affine closed-form
// maps on the well state (y1, y2), precomputed here as a 2x2 matrix plus an
// offset so a surviving repetition is applied with six multiply-adds.
func (b *Battery) RepetitionOperator(p *profile.Profile) battery.RepetitionOperator {
	op := &repetitionOperator{b: b, m11: 1, m22: 1}
	kp, c := b.kp, b.params.C
	var duration float64
	for _, seg := range p.Segments {
		e := math.Exp(-kp * seg.Duration)
		r := (kp*seg.Duration - 1 + e) / kp
		// The closed form as an affine map (y1, y2) -> A (y1, y2) + v.
		a11 := e + c*(1-e)
		a12 := c * (1 - e)
		a21 := (1 - c) * (1 - e)
		a22 := e + (1-c)*(1-e)
		v1 := -seg.Current * ((1-e)/kp + c*r)
		v2 := -seg.Current * (1 - c) * r
		op.m11, op.m12, op.m21, op.m22, op.d1, op.d2 =
			a11*op.m11+a12*op.m21, a11*op.m12+a12*op.m22,
			a21*op.m11+a22*op.m21, a21*op.m12+a22*op.m22,
			a11*op.d1+a12*op.d2+v1, a21*op.d1+a22*op.d2+v2
		op.charge += seg.Current * seg.Duration
		duration += seg.Duration
		if seg.Current > op.peak {
			op.peak = seg.Current
		}
	}
	op.peakE = math.Exp(-kp * duration)
	op.peakR = (kp*duration - 1 + op.peakE) / kp
	return op
}

// repetitionOperator is the affine transfer operator of one profile
// repetition on a KiBaM battery: y -> M y + d on (available, bound), with the
// delivered charge advancing by the profile charge.
type repetitionOperator struct {
	b                  *Battery
	m11, m12, m21, m22 float64
	d1, d2             float64
	charge             float64
	// Conservative survival check: precomputed e and r terms of the closed
	// form for draining the profile's peak current over the whole repetition
	// duration.
	peak, peakE, peakR float64
}

// CanAdvance implements battery.RepetitionOperator: the available charge
// after draining the constant peak current for the whole repetition is a
// lower bound on the true trajectory (a heavier load at every instant drains
// the available well faster), so a positive value proves survival.
func (o *repetitionOperator) CanAdvance() bool {
	b := o.b
	if !b.alive {
		return false
	}
	c := b.params.C
	y0 := b.y1 + b.y2
	y1 := b.y1*o.peakE + (y0*b.kp*c-o.peak)*(1-o.peakE)/b.kp - o.peak*c*o.peakR
	return y1 > 0
}

// Advance implements battery.RepetitionOperator.
func (o *repetitionOperator) Advance() {
	b := o.b
	b.y1, b.y2 = o.m11*b.y1+o.m12*b.y2+o.d1, o.m21*b.y1+o.m22*b.y2+o.d2
	b.delivered += o.charge
}

// DrainEuler is a reference forward-Euler integration of the KiBaM ODEs with
// the given step; it exists so tests can cross-check the closed form.
func (b *Battery) DrainEuler(current, dt, step float64) (sustained float64, alive bool) {
	if !b.alive {
		return 0, false
	}
	if step <= 0 {
		step = dt / 1000
	}
	c := b.params.C
	t := 0.0
	for t < dt {
		h := math.Min(step, dt-t)
		h1 := b.y1 / c
		h2 := b.y2 / (1 - c)
		flow := b.params.K * (h2 - h1)
		b.y1 += (-current + flow) * h
		b.y2 += -flow * h
		b.delivered += current * h
		t += h
		if b.y1 <= 0 {
			b.y1 = 0
			b.alive = false
			return t, false
		}
	}
	return dt, true
}

// String implements fmt.Stringer.
func (b *Battery) String() string {
	return fmt.Sprintf("KiBaM(cap=%.0fmAh c=%.2f k=%.2g avail=%.0fmAh bound=%.0fmAh)",
		battery.MAh(b.params.CapacityCoulombs), b.params.C, b.params.K,
		battery.MAh(b.AvailableCharge()), battery.MAh(b.BoundCharge()))
}

// compile-time interface checks
var (
	_ battery.Model                = (*Battery)(nil)
	_ battery.SegmentDrainer       = (*Battery)(nil)
	_ battery.RepetitionTransferer = (*Battery)(nil)
)
