package kibam

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"battsched/internal/battery"
	"battsched/internal/profile"
)

func TestNewRejectsBadParams(t *testing.T) {
	bad := []Params{
		{CapacityCoulombs: 0, C: 0.5, K: 1e-4},
		{CapacityCoulombs: 100, C: 0, K: 1e-4},
		{CapacityCoulombs: 100, C: 1, K: 1e-4},
		{CapacityCoulombs: 100, C: 0.5, K: 0},
	}
	for i, p := range bad {
		if _, err := New(p); !errors.Is(err, ErrBadParams) {
			t.Errorf("case %d: New(%+v) err = %v, want ErrBadParams", i, p, err)
		}
	}
}

func TestResetRestoresFullCharge(t *testing.T) {
	b := Default()
	if _, alive := b.Drain(2.0, 100); !alive {
		t.Fatal("battery died unexpectedly early")
	}
	b.Reset()
	if got := b.AvailableCharge() + b.BoundCharge(); math.Abs(got-b.MaxCapacity()) > 1e-6 {
		t.Fatalf("total charge after Reset = %v, want %v", got, b.MaxCapacity())
	}
	if b.DeliveredCharge() != 0 {
		t.Fatalf("delivered after Reset = %v, want 0", b.DeliveredCharge())
	}
	if b.StateOfCharge() != 1 {
		t.Fatalf("SoC after Reset = %v, want 1", b.StateOfCharge())
	}
}

func TestDrainConservesCharge(t *testing.T) {
	b := Default()
	before := b.AvailableCharge() + b.BoundCharge()
	const i, dt = 1.0, 500.0
	b.Drain(i, dt)
	after := b.AvailableCharge() + b.BoundCharge()
	if math.Abs(before-after-i*dt) > 1e-6*before {
		t.Fatalf("charge not conserved: before=%v after=%v drawn=%v", before, after, i*dt)
	}
	if math.Abs(b.DeliveredCharge()-i*dt) > 1e-9 {
		t.Fatalf("delivered = %v, want %v", b.DeliveredCharge(), i*dt)
	}
}

func TestZeroCurrentRecoversAvailableWell(t *testing.T) {
	b := Default()
	b.Drain(2.0, 600) // deplete the available well somewhat
	availBefore := b.AvailableCharge()
	boundBefore := b.BoundCharge()
	b.Drain(0, 600) // rest
	if b.AvailableCharge() <= availBefore {
		t.Fatalf("available well did not recover during rest: %v -> %v", availBefore, b.AvailableCharge())
	}
	if b.BoundCharge() >= boundBefore {
		t.Fatalf("bound well did not supply recovery: %v -> %v", boundBefore, b.BoundCharge())
	}
}

func TestNegativeCurrentTreatedAsZero(t *testing.T) {
	b := Default()
	sustained, alive := b.Drain(-5, 10)
	if sustained != 10 || !alive {
		t.Fatalf("Drain(-5, 10) = (%v, %v), want (10, true)", sustained, alive)
	}
	if b.DeliveredCharge() != 0 {
		t.Fatalf("delivered = %v, want 0", b.DeliveredCharge())
	}
}

func TestDrainAfterDeathReturnsZero(t *testing.T) {
	b := Default()
	// Run a huge current until death.
	for i := 0; i < 100000; i++ {
		if _, alive := b.Drain(10, 10); !alive {
			break
		}
	}
	sustained, alive := b.Drain(1, 1)
	if sustained != 0 || alive {
		t.Fatalf("Drain after death = (%v, %v), want (0, false)", sustained, alive)
	}
}

func TestZeroAndNegativeDt(t *testing.T) {
	b := Default()
	if s, alive := b.Drain(1, 0); s != 0 || !alive {
		t.Fatalf("Drain(1,0) = (%v,%v)", s, alive)
	}
	if s, alive := b.Drain(1, -3); s != 0 || !alive {
		t.Fatalf("Drain(1,-3) = (%v,%v)", s, alive)
	}
}

func TestRateCapacityEffect(t *testing.T) {
	// Higher constant loads must deliver less total charge.
	loads := []float64{0.2, 0.5, 1.0, 2.0, 4.0}
	var prev float64 = math.Inf(1)
	for _, i := range loads {
		b := Default()
		r, err := battery.ConstantLoadLifetime(b, i, 1e6)
		if err != nil {
			t.Fatalf("ConstantLoadLifetime(%v): %v", i, err)
		}
		if !r.Exhausted {
			t.Fatalf("battery did not die at load %v", i)
		}
		if r.DeliveredCharge > prev+1e-6 {
			t.Fatalf("delivered charge increased with load: %v A -> %v C (prev %v C)", i, r.DeliveredCharge, prev)
		}
		if r.DeliveredCharge > b.MaxCapacity()+1e-6 {
			t.Fatalf("delivered %v exceeds max capacity %v", r.DeliveredCharge, b.MaxCapacity())
		}
		prev = r.DeliveredCharge
	}
}

func TestLowLoadApproachesMaxCapacity(t *testing.T) {
	b := Default()
	r, err := battery.ConstantLoadLifetime(b, 0.05, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exhausted {
		t.Fatal("battery did not die under the horizon")
	}
	if frac := r.DeliveredCharge / b.MaxCapacity(); frac < 0.93 {
		t.Fatalf("low-load delivered fraction = %v, want >= 0.93", frac)
	}
}

func TestNominalCapacityCalibration(t *testing.T) {
	// At a ~1 A load the default cell should deliver roughly its nominal
	// capacity (about 1600 mAh out of 2000 mAh maximum).
	b := Default()
	r, err := battery.ConstantLoadLifetime(b, 1.0, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	mah := r.DeliveredMAh()
	if mah < 1400 || mah > 1850 {
		t.Fatalf("delivered at 1A = %v mAh, want within [1400, 1850]", mah)
	}
}

func TestClosedFormMatchesEuler(t *testing.T) {
	a := Default()
	e := Default()
	const current, dt = 1.5, 400.0
	a.Drain(current, dt)
	e.DrainEuler(current, dt, 0.01)
	if math.Abs(a.AvailableCharge()-e.AvailableCharge()) > 1e-3*a.MaxCapacity() {
		t.Fatalf("available: closed form %v vs Euler %v", a.AvailableCharge(), e.AvailableCharge())
	}
	if math.Abs(a.BoundCharge()-e.BoundCharge()) > 1e-3*a.MaxCapacity() {
		t.Fatalf("bound: closed form %v vs Euler %v", a.BoundCharge(), e.BoundCharge())
	}
}

func TestDrainEulerDeathAndDefaults(t *testing.T) {
	b := Default()
	// Massive current kills it quickly even with default step selection.
	sustained, alive := b.DrainEuler(1000, 100, 0)
	if alive {
		t.Fatal("battery survived a 1000 A discharge")
	}
	if sustained <= 0 || sustained >= 100 {
		t.Fatalf("sustained = %v, want within (0, 100)", sustained)
	}
	if s, alive2 := b.DrainEuler(1, 1, 0.1); s != 0 || alive2 {
		t.Fatalf("DrainEuler after death = (%v,%v)", s, alive2)
	}
}

func TestDeathTimeBisection(t *testing.T) {
	b := Default()
	// Available well is 3600 C; at 10 A with little recovery the battery dies
	// around 360 s. Drain in a single long step and check the sustained time
	// is located inside the interval, not snapped to an end.
	sustained, alive := b.Drain(10, 1000)
	if alive {
		t.Fatal("battery should have died")
	}
	if sustained < 300 || sustained > 450 {
		t.Fatalf("death time = %v s, want roughly 360 s", sustained)
	}
	if b.AvailableCharge() > 1e-3 {
		t.Fatalf("available charge at death = %v, want ~0", b.AvailableCharge())
	}
}

func TestStringAndAccessors(t *testing.T) {
	b := Default()
	if b.String() == "" {
		t.Fatal("empty String()")
	}
	if b.Name() != "kibam" {
		t.Fatalf("Name = %q", b.Name())
	}
	if b.Params().C != 0.5 {
		t.Fatalf("Params.C = %v", b.Params().C)
	}
}

// Property: delivered charge never exceeds maximum capacity and total
// remaining charge never goes negative, for arbitrary piecewise loads.
func TestKibamInvariantProperty(t *testing.T) {
	f := func(loads []float64) bool {
		b := Default()
		for _, l := range loads {
			i := math.Abs(math.Mod(l, 5))
			_, alive := b.Drain(i, 120)
			if b.DeliveredCharge() > b.MaxCapacity()+1e-6 {
				return false
			}
			if b.AvailableCharge() < -1e-6 || b.BoundCharge() < -1e-6 {
				return false
			}
			if !alive {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestRepetitionOperatorMatchesSegmentStepping checks the precomputed affine
// transfer operator reproduces segment-by-segment closed-form stepping over
// many profile repetitions.
func TestRepetitionOperatorMatchesSegmentStepping(t *testing.T) {
	p := profile.New()
	p.Append(30, 1.5)
	p.Append(20, 0.1)
	p.Append(10, 0.6)
	viaOperator := Default()
	viaSegments := Default()
	op := viaOperator.RepetitionOperator(p)
	reps := 0
	for reps < 40 && op.CanAdvance() {
		op.Advance()
		reps++
	}
	if reps < 10 {
		t.Fatalf("operator advanced only %d repetitions before its conservative check tripped", reps)
	}
	for r := 0; r < reps; r++ {
		for _, s := range p.Segments {
			if _, alive := viaSegments.DrainSegment(s.Current, s.Duration); !alive {
				t.Fatalf("segment path died at repetition %d", r)
			}
		}
	}
	tol := 1e-9 * viaSegments.MaxCapacity()
	if math.Abs(viaOperator.AvailableCharge()-viaSegments.AvailableCharge()) > tol {
		t.Fatalf("available: operator %v vs segments %v", viaOperator.AvailableCharge(), viaSegments.AvailableCharge())
	}
	if math.Abs(viaOperator.BoundCharge()-viaSegments.BoundCharge()) > tol {
		t.Fatalf("bound: operator %v vs segments %v", viaOperator.BoundCharge(), viaSegments.BoundCharge())
	}
	if math.Abs(viaOperator.DeliveredCharge()-viaSegments.DeliveredCharge()) > tol {
		t.Fatalf("delivered: operator %v vs segments %v", viaOperator.DeliveredCharge(), viaSegments.DeliveredCharge())
	}
}

// TestExhaustionTimeAgreesWithDrain checks the Newton root coincides with the
// death instant Drain locates inside a long segment.
func TestExhaustionTimeAgreesWithDrain(t *testing.T) {
	b := Default()
	te := b.ExhaustionTime(10)
	sustained, alive := b.Drain(10, 1e6)
	if alive {
		t.Fatal("battery should have died")
	}
	if math.Abs(te-sustained) > 1e-6*te {
		t.Fatalf("ExhaustionTime = %v, Drain death at %v", te, sustained)
	}
	if b.ExhaustionTime(1) != 0 {
		t.Fatalf("ExhaustionTime after death = %v, want 0", b.ExhaustionTime(1))
	}
}
