package battery

import (
	"fmt"
	"math"

	"battsched/internal/obs"
	"battsched/internal/profile"
)

// SimulateBatch plays one load profile against N battery models, replaying
// the segment stream once instead of once per model, and returns one Result
// per model in input order. Results are bit-identical to N sequential
// SimulateUntilExhausted calls with the same options: each model sees exactly
// the same sequence of Drain/DrainSegment/Advance calls with exactly the same
// arguments it would see alone.
//
// The batch splits into two groups by the usual dispatch rule. Analytic
// models (SegmentDrainer, not stepped-forced, AnalyticGater-approved) are
// already O(segments + repetitions) per simulation — their per-repetition
// transfer operators amortise the replay internally — so they run through the
// scalar analytic driver unchanged. Stepped models are where the replay cost
// lives: they share one slot clock, every substep of the subdivided segment
// stream is generated once and applied to all still-alive stepped models, and
// exhausted models drop out of the active set so the pass narrows as
// batteries die.
//
// The shared clock requires the full-sustain property from alive stepped
// models: a model that survives a substep must sustain all of it (every
// registered model does). A partial sustain from a surviving model would
// desynchronise that model's battery time from the shared profile time, so
// SimulateBatch reports it as ErrNoProgress instead of silently diverging
// from the sequential results.
func SimulateBatch(models []Model, p *profile.Profile, opts SimulateOptions) ([]Result, error) {
	for i, m := range models {
		if m == nil {
			return nil, fmt.Errorf("%w (batch index %d)", ErrNilModel, i)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadProfile, err)
	}
	opts.setDefaults()
	obs.Sim.BatteryBatches.Add(1)
	results := make([]Result, len(models))
	var stepped []steppedEntry
	for i, m := range models {
		if sd, ok := analyticDrainer(m, opts.MaxStep); ok {
			obs.Sim.BatteryAnalytic.Add(1)
			r, err := simulateAnalytic(sd, p, opts)
			if err != nil {
				return nil, err
			}
			results[i] = r
			continue
		}
		stepped = append(stepped, steppedEntry{idx: i, m: m})
	}
	steppedOpts := opts
	if steppedOpts.MaxStep <= 0 {
		steppedOpts.MaxStep = 1.0
	}
	obs.Sim.BatteryStepped.Add(uint64(len(stepped)))
	if err := simulateSteppedBatch(stepped, p, steppedOpts, results); err != nil {
		return nil, err
	}
	return results, nil
}

// steppedEntry pairs a stepped-path model with its slot in the results slice.
type steppedEntry struct {
	idx int
	m   Model
}

// simulateSteppedBatch is simulateStepped over a set of models sharing one
// slot clock. Because every alive model sustains each substep in full, the
// whole driver state machine — profile time t, the per-segment remaining
// countdown, the horizon capping and the repetition counter — is identical
// across models, so it is kept once and each substep is generated once.
// Models that die are finalised with their own sustained fraction of the
// fatal substep and removed from the active set.
func simulateSteppedBatch(entries []steppedEntry, p *profile.Profile, opts SimulateOptions, results []Result) error {
	if len(entries) == 0 {
		return nil
	}
	for _, e := range entries {
		e.m.Reset()
	}
	active := entries
	reps := 0
	t := 0.0
	for t < opts.MaxTime && len(active) > 0 {
		completed := true
		for _, seg := range p.Segments {
			remaining := seg.Duration
			for remaining > 1e-12 && len(active) > 0 {
				dt := math.Min(remaining, opts.MaxStep)
				if t+dt > opts.MaxTime {
					dt = opts.MaxTime - t
					if dt <= 0 {
						completed = false
						break
					}
				}
				n := 0
				for _, e := range active {
					sustained, alive := e.m.Drain(seg.Current, dt)
					if !alive {
						results[e.idx] = Result{
							Lifetime:        t + sustained,
							DeliveredCharge: e.m.DeliveredCharge(),
							Exhausted:       true,
							Repetitions:     reps,
						}
						continue
					}
					if sustained != dt {
						return fmt.Errorf("%w: %s sustained %v of a %v s step in a batch", ErrNoProgress, e.m.Name(), sustained, dt)
					}
					active[n] = e
					n++
				}
				active = active[:n]
				t += dt
				remaining -= dt
			}
			if !completed || len(active) == 0 {
				break
			}
		}
		if !completed {
			break
		}
		reps++
	}
	for _, e := range active {
		results[e.idx] = Result{
			Lifetime:        t,
			DeliveredCharge: e.m.DeliveredCharge(),
			Repetitions:     reps,
		}
	}
	return nil
}
