// Package battsched is a battery-aware dynamic scheduler for periodic task
// graphs on a single DVS-capable processor. It reproduces the methodology of
//
//	"Battery Aware Dynamic Scheduling for Periodic Task Graphs"
//	V. Rao, N. Navet, G. Singhal, A. Kumar, G.S. Visweswaran
//	14th Int. Workshop on Parallel and Distributed Real-Time Systems, 2006.
//
// The library combines three ingredients:
//
//   - an EDF-based DVS algorithm (ccEDF or laEDF, extended to task graphs)
//     that selects the reference frequency guaranteeing every deadline,
//   - a greedy priority function (Gruian's pUBS, or LTF/STF/Random baselines)
//     that picks which ready node to execute next so as to maximise slack
//     recovery, optionally drawing candidates from all released task graphs
//     guarded by the paper's feasibility check (the BAS-2 policy), and
//   - battery models (KiBaM, Rakhmatov–Vrudhula diffusion, a stochastic
//     charge-unit model and Peukert's law) that evaluate the resulting load
//     current profiles for delivered charge and battery lifetime.
//
// The root package is a facade over the internal packages: it re-exports the
// types needed to describe workloads, configure a simulation, run it and
// evaluate the resulting profile on a battery. The examples/ directory shows
// complete programs; the internal/experiments package regenerates the tables
// and figures of the paper.
//
// # Parallel experiment runner
//
// Every stochastic sweep runs on a job-grid harness (internal/runner): the
// experiment's (set × scheme × sweep-point) grid is enumerated as independent
// jobs executed by a bounded worker pool. Each job derives its own random
// stream from the experiment seed and its grid coordinates with a
// SplitMix64-style mixer (DeriveSeed/SeededRNG), never from shared generator
// state, and per-job results are folded in job order — so results are
// byte-identical at any worker count:
//
//	go run ./cmd/experiments -table2            # all cores (the default)
//	go run ./cmd/experiments -table2 -parallel 1  # sequential, same output
//	go run ./cmd/experiments -all -progress -timeout 30m
//
// Experiment configurations embed ExperimentOptions (Parallel worker count,
// Progress callback); cmd/experiments and cmd/batsim expose them as
// -parallel, -timeout and -progress flags. The harness is exported for
// custom sweeps via ParallelMap, NewJobGrid, DeriveSeed and SeededRNG, and
// RunScenarioGrid sweeps the (utilisation × battery model × scheme) grid that
// new workloads plug into; its jobs aggregate into per-job accumulators that
// the fold combines with a mergeable Welford reduction rather than locks.
//
// # Quick start
//
//	g := battsched.NewGraph("T1", 0.1)           // period = deadline = 100 ms
//	a := g.AddNode("decode", 20e6)               // WCET in cycles at f_max
//	b := g.AddNode("render", 30e6)
//	g.AddEdge(a, b)                              // precedence: decode -> render
//
//	res, err := battsched.Run(battsched.Config{
//	    System:      battsched.NewSystem(g),
//	    DVS:         battsched.NewLAEDF(),
//	    Priority:    battsched.NewPUBS(),
//	    ReadyPolicy: battsched.AllReleased,      // BAS-2
//	    Hyperperiods: 10,
//	})
//	if err != nil { ... }
//
//	life, err := battsched.BatteryLifetime(battsched.NewKiBaM(), res.Profile)
//	fmt.Println(res.EnergyBattery, life.LifetimeMinutes(), life.DeliveredMAh())
package battsched
