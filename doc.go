// Package battsched is a battery-aware dynamic scheduler for periodic task
// graphs on a single DVS-capable processor. It reproduces the methodology of
//
//	"Battery Aware Dynamic Scheduling for Periodic Task Graphs"
//	V. Rao, N. Navet, G. Singhal, A. Kumar, G.S. Visweswaran
//	14th Int. Workshop on Parallel and Distributed Real-Time Systems, 2006.
//
// The library combines three ingredients:
//
//   - an EDF-based DVS algorithm (ccEDF or laEDF, extended to task graphs)
//     that selects the reference frequency guaranteeing every deadline,
//   - a greedy priority function (Gruian's pUBS, or LTF/STF/Random baselines)
//     that picks which ready node to execute next so as to maximise slack
//     recovery, optionally drawing candidates from all released task graphs
//     guarded by the paper's feasibility check (the BAS-2 policy), and
//   - battery models (KiBaM, Rakhmatov–Vrudhula diffusion, a stochastic
//     charge-unit model and Peukert's law) that evaluate the resulting load
//     current profiles for delivered charge and battery lifetime.
//
// The root package is a facade over the internal packages: it re-exports the
// types needed to describe workloads, configure a simulation, run it and
// evaluate the resulting profile on a battery. The examples/ directory shows
// complete programs; the internal/experiments package regenerates the tables
// and figures of the paper.
//
// # Simulation observers
//
// The engine reports what it executed through a SegmentSink observer: one
// constant-state segment (node, frequency, battery current — or idle) per
// interval of the simulation, in order. Config.Observer selects the sink.
// With a nil Observer the engine records the full load profile and execution
// trace into the Result, exactly as the interactive CLIs need; experiment
// sweeps pass NewSimProfileRecorder (profile only, for battery evaluation)
// or DiscardSegments (aggregates only). Energy totals, busy/idle times and
// scheduling statistics are accumulated by the engine itself and never
// depend on the observer, so disabling recording changes no reported number
// — it only removes the recording cost from the hot path. cmd/basched
// exposes the choice as -notrace / -noprofile.
//
// # Analytic battery fast path
//
// BatteryLifetime and BatteryLifetimeOpts dispatch on the model.
// Closed-form models (KiBaM, diffusion, Peukert) implement
// BatterySegmentDrainer and are simulated analytically: each constant-current
// profile segment is applied exactly in one closed-form update, whole profile
// repetitions are applied through a precomputed affine transfer operator in
// O(state) time while a conservative check proves the battery survives them,
// and the exhaustion instant is located by Newton iteration (with a bisection
// safeguard) on the closed form. The stochastic model's expected-value mode
// (its default) is analytic too: between recoveries the delivered charge
// advances deterministically, so the expected recovery collapses to a
// closed-form geometric series per segment; Monte Carlo mode declines the
// fast path (BatteryAnalyticGater) and keeps exact slot stepping. Setting
// BatterySimulateOptions.MaxStep to a positive value forces the
// uniform-stepping path for every model (the reference the accuracy tests
// compare against); cmd/batsim and cmd/basched expose the choice as -maxstep.
// On representative periodic loads the analytic path is 33–350x faster than
// 2 s stepping (see cmd/engbench -battery-o and the BenchmarkLifetime*
// benchmarks in internal/battery).
//
// BatteryLifetimeBatch evaluates N models against one profile in a single
// pass — analytic models via the scalar analytic driver, stepped models
// sharing one slot clock with exhausted models dropping out — and is
// bit-identical to N sequential BatteryLifetime calls; the experiment
// drivers and batsim's comma-separated -battery flag are built on it.
//
// # Parallel experiment runner
//
// Every stochastic sweep runs on a job-grid harness (internal/runner): the
// experiment's (set × scheme × sweep-point) grid is enumerated as independent
// jobs executed by a bounded worker pool. Each job derives its own random
// stream from the experiment seed and its grid coordinates with a
// SplitMix64-style mixer (DeriveSeed/SeededRNG), never from shared generator
// state. Results stream back in deterministic job order (RunJobGridStream; a
// bounded reorder window, so the grid is never materialised) and the drivers
// fold them into mergeable Welford accumulators (StatsAccumulator) — so
// results are byte-identical at any worker count:
//
//	go run ./cmd/experiments -table2            # all cores (the default)
//	go run ./cmd/experiments -table2 -parallel 1  # sequential, same output
//	go run ./cmd/experiments -all -progress -timeout 30m
//
// Experiment configurations embed ExperimentOptions (Parallel worker count,
// Progress callback, adaptive-stopping knobs); cmd/experiments exposes them
// as -parallel, -timeout, -progress, -ci and -max-sets flags (cmd/batsim's
// deterministic -curve sweep shares -parallel and -timeout). The harness is
// exported for custom sweeps via
// ParallelMap, RunJobGridStream, NewJobGrid, DeriveSeed and SeededRNG, and
// RunScenarioGrid sweeps the (utilisation × battery model × scheme) grid that
// new workloads plug into.
//
// # Unified experiment API
//
// Every experiment of the evaluation — Table 1, Figure 6, Table 2, the
// battery characterisation curve, the estimate-quality ablation and the
// scenario grid — is registered by name in an experiment registry and runs
// through one declarative surface: an ExperimentSpec in, an ExperimentReport
// out (RunExperiment, ExperimentNames). A Report is named rows of metric
// cells backed by serialisable accumulator state (n/mean/M2/min/max, exact
// across JSON round-trips); the paper's plain-text tables render from it
// byte-identically (FormatExperimentReport) and cmd/experiments writes it as
// a versioned JSON artifact with -o. Battery models register the same way
// (NewBatteryModel, BatteryModelNames): importing a model package makes its
// name available to every -battery flag, and unknown names fail listing the
// valid ones.
//
// Because set seeds key on absolute set indices, a run shards exactly across
// processes or machines: -shard i/n (ExperimentShard) restricts a run to its
// contiguous slice of every batch's set range and emits a partial report, and
// MergeExperimentReports (the CLI's merge subcommand) combines all n partials
// into the complete run. Per-set experiments retain their samples, so the
// merge replays them in absolute order and reproduces the unsharded
// accumulators bit-for-bit; the scenario grid's chunk-merged cells combine
// Welford state instead, identical up to floating-point reassociation (never
// visibly at table precision).
//
//	go run ./cmd/experiments run table2 -quick -shard 0/2 -o s0.json
//	go run ./cmd/experiments run table2 -quick -shard 1/2 -o s1.json
//	go run ./cmd/experiments merge -o merged.json s0.json s1.json
//
// # Adaptive set counts
//
// Every table cell the paper reports is a mean over random task-graph sets.
// Instead of guessing how many sets suffice, set ExperimentOptions.TargetCI
// (cmd/experiments -ci): the driver runs batches of sets — each batch the
// configured set count — until the Student-t 95 % confidence half-width of
// its key metric (battery lifetime for Table 2 and the scenario grid,
// normalised energy for Table 1/Figure 6/the ablation) is below the target
// relative to the mean for every reported row, bounded by MaxSets (default
// 8× the configured count). Set seeds depend only on the absolute set index,
// so adaptive runs are reproducible and their first batch matches the
// fixed-count run exactly.
//
// # Quick start
//
//	g := battsched.NewGraph("T1", 0.1)           // period = deadline = 100 ms
//	a := g.AddNode("decode", 20e6)               // WCET in cycles at f_max
//	b := g.AddNode("render", 30e6)
//	g.AddEdge(a, b)                              // precedence: decode -> render
//
//	res, err := battsched.Run(battsched.Config{
//	    System:      battsched.NewSystem(g),
//	    DVS:         battsched.NewLAEDF(),
//	    Priority:    battsched.NewPUBS(),
//	    ReadyPolicy: battsched.AllReleased,      // BAS-2
//	    Hyperperiods: 10,
//	})
//	if err != nil { ... }
//
//	life, err := battsched.BatteryLifetime(battsched.NewKiBaM(), res.Profile)
//	fmt.Println(res.EnergyBattery, life.LifetimeMinutes(), life.DeliveredMAh())
package battsched
