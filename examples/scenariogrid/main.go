// Command scenariogrid demonstrates the parallel experiment runner through
// the public battsched API: it sweeps the (utilisation × battery × scheme)
// scenario grid on all cores, then uses ParallelMap directly for a custom
// seeded sweep, showing that results are identical at any worker count.
package main

import (
	"context"
	"fmt"
	"log"

	"battsched"
)

func main() {
	ctx := context.Background()

	// Sweep two utilisation points of the paper's Table 2 setting over two
	// battery models. The grid runs on all cores; per-cell workloads derive
	// from (seed, utilisation, set), so any -parallel level gives the same
	// rows.
	cfg := battsched.DefaultScenarioGridConfig()
	cfg.Utilizations = []float64{0.5, 0.7}
	cfg.Batteries = []string{"kibam"}
	cfg.Schemes = []string{"EDF", "BAS-2"}
	cfg.Sets = 4
	rows, err := battsched.RunScenarioGrid(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(battsched.FormatScenarioGrid(rows))

	// ParallelMap is the underlying harness: n independent jobs, results in
	// job order. DeriveSeed gives each job its own random stream.
	lifetimes, err := battsched.ParallelMap(ctx, 4, battsched.RunnerOptions{}, func(_ context.Context, i int) (float64, error) {
		rng := battsched.SeededRNG(7, int64(i))
		sys, err := battsched.GenerateSystem(battsched.DefaultGeneratorConfig(), 3, 0.7, battsched.DefaultProcessor().FMax(), rng)
		if err != nil {
			return 0, err
		}
		scheme := battsched.BAS2()
		res, err := battsched.Run(battsched.Config{
			System:       sys,
			DVS:          scheme.DVS,
			Priority:     scheme.Priority,
			ReadyPolicy:  scheme.ReadyPolicy,
			Execution:    battsched.NewUniformExecution(0.2, 1.0, battsched.DeriveSeed(7, int64(i))),
			Hyperperiods: 2,
			Seed:         battsched.DeriveSeed(7, int64(i)),
		})
		if err != nil {
			return 0, err
		}
		life, err := battsched.BatteryLifetimeOpts(battsched.NewKiBaM(), res.Profile,
			battsched.BatterySimulateOptions{MaxTime: 72 * 3600})
		if err != nil {
			return 0, err
		}
		return life.LifetimeMinutes(), nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBAS-2 lifetimes of 4 independent seeded workloads (min):")
	for i, l := range lifetimes {
		fmt.Printf("  workload %d: %.1f\n", i, l)
	}
}
