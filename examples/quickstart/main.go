// Quickstart: build a small periodic task-graph workload, schedule it with
// the paper's BAS-2 methodology (laEDF frequency setting + pUBS ordering over
// all released task graphs, guarded by the feasibility check) and estimate
// the resulting battery lifetime on the default 2000 mAh NiMH cell.
package main

import (
	"fmt"
	"log"

	"battsched"
)

func main() {
	// A video pipeline released every 40 ms: decode -> {scale, audio} -> mux.
	video := battsched.NewGraph("video", 0.040)
	decode := video.AddNode("decode", 8e6) // WCET in cycles at f_max (1 GHz)
	scale := video.AddNode("scale", 6e6)
	audio := video.AddNode("audio", 3e6)
	mux := video.AddNode("mux", 2e6)
	video.AddEdge(decode, scale)
	video.AddEdge(decode, audio)
	video.AddEdge(scale, mux)
	video.AddEdge(audio, mux)

	// A telemetry task graph released every 100 ms: sample -> filter -> send.
	telemetry := battsched.NewGraph("telemetry", 0.100)
	sample := telemetry.AddNode("sample", 5e6)
	filter := telemetry.AddNode("filter", 12e6)
	send := telemetry.AddNode("send", 4e6)
	telemetry.AddEdge(sample, filter)
	telemetry.AddEdge(filter, send)

	sys := battsched.NewSystem(video, telemetry)
	proc := battsched.DefaultProcessor()
	fmt.Printf("workload: %d graphs, %d nodes, worst-case utilisation %.2f\n",
		sys.NumGraphs(), sys.TotalNodes(), sys.Utilization(proc.FMax()))

	res, err := battsched.Run(battsched.Config{
		System:        sys,
		Processor:     proc,
		DVS:           battsched.NewLAEDF(),
		Priority:      battsched.NewPUBS(),
		ReadyPolicy:   battsched.AllReleased, // BAS-2
		FrequencyMode: battsched.DiscreteFrequency,
		Execution:     battsched.NewUniformExecution(0.2, 1.0, 42),
		Hyperperiods:  25,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %.2fs: %d jobs, %d deadline misses, avg frequency %.2f GHz, avg current %.3f A\n",
		res.Horizon, res.JobsCompleted, res.DeadlineMisses, res.AverageFrequency/1e9, res.Profile.AverageCurrent())

	for _, model := range []battsched.BatteryModel{
		battsched.NewStochasticBattery(),
		battsched.NewKiBaM(),
		battsched.NewDiffusionBattery(),
	} {
		life, err := battsched.BatteryLifetimeOpts(model, res.Profile,
			battsched.BatterySimulateOptions{MaxTime: 72 * 3600})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-11s battery lifetime %6.1f min, charge delivered %4.0f mAh\n",
			model.Name(), life.LifetimeMinutes(), life.DeliveredMAh())
	}
}
