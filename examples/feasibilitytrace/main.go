// Feasibility-check trace: the paper's Figure 5. Three task graphs are
// released at t = 0: T1 (one task, wc = 5, deadline 20), T2 (one task, wc = 5,
// deadline 50) and T3 (three tasks, wc = 5 each, deadline 100); utilisation is
// 0.5 and every task takes its worst case, so the reference frequency stays at
// 0.5 f_max throughout.
//
// Under canonical EDF ordering the tasks run strictly in deadline order.
// With the pUBS priority applied to all released task graphs, nodes of T2 and
// T3 may run before T1's window has drained — each such out-of-EDF-order
// execution first passes the paper's feasibility check (Algorithm 2), so no
// deadline is ever missed.
package main

import (
	"fmt"
	"log"
	"os"

	"battsched"
)

const fmax = 1e9

func buildSystem() *battsched.System {
	t1 := battsched.NewGraph("T1", 20)
	t1.AddNode("T1.a", 5*fmax)
	t2 := battsched.NewGraph("T2", 50)
	t2.AddNode("T2.a", 5*fmax)
	t3 := battsched.NewGraph("T3", 100)
	t3.AddNode("T3.a", 5*fmax)
	t3.AddNode("T3.b", 5*fmax)
	t3.AddNode("T3.c", 5*fmax)
	return battsched.NewSystem(t1, t2, t3)
}

func runAndRender(title string, prio battsched.PriorityFunction, policy battsched.ReadyPolicy) {
	res, err := battsched.Run(battsched.Config{
		System:      buildSystem(),
		DVS:         battsched.NewCCEDF(),
		Priority:    prio,
		ReadyPolicy: policy,
		Execution:   battsched.WorstCaseExecution{},
		Horizon:     100,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", title)
	fmt.Printf("  deadline misses: %d, out-of-EDF-order executions: %d, feasibility rejections: %d\n",
		res.DeadlineMisses, res.OutOfOrderExecutions, res.FeasibilityRejections)
	fmt.Printf("  average frequency: %.2f GHz (fref = U*fmax = 0.5 GHz)\n\n", res.AverageFrequency/1e9)
	if err := res.Trace.Render(os.Stdout, battsched.GanttOptions{Width: 100}); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}

func main() {
	fmt.Println("Figure 5 of the paper: canonical EDF ordering vs pUBS ordering with the feasibility check.")
	fmt.Println()
	runAndRender("(a) Canonical EDF ordering (FIFO, most imminent task graph only)",
		battsched.NewFIFO(), battsched.MostImminentOnly)
	runAndRender("(b) pUBS ordering over all released task graphs (BAS-2, feasibility check active)",
		battsched.NewPUBS(), battsched.AllReleased)
}
