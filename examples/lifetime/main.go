// Lifetime comparison: schedule the same random task-graph workload with the
// five scheduling schemes of the paper's Table 2 (EDF without DVS, ccEDF,
// laEDF, BAS-1 and BAS-2) and compare the battery lifetime and charge each
// scheme extracts from the default 2000 mAh cell.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"battsched"
)

func main() {
	var (
		graphs      = flag.Int("graphs", 5, "number of random task graphs")
		utilization = flag.Float64("utilization", 0.85, "worst-case utilisation at f_max")
		sets        = flag.Int("sets", 5, "number of random workloads to average")
		seed        = flag.Int64("seed", 7, "random seed")
	)
	flag.Parse()

	proc := battsched.DefaultProcessor()
	schemes := battsched.PaperSchemes()
	lifetime := make([]float64, len(schemes))
	charge := make([]float64, len(schemes))
	energy := make([]float64, len(schemes))

	for set := 0; set < *sets; set++ {
		rng := rand.New(rand.NewSource(*seed + int64(set)))
		sys, err := battsched.GenerateSystem(battsched.DefaultGeneratorConfig(), *graphs, *utilization, proc.FMax(), rng)
		if err != nil {
			log.Fatal(err)
		}
		for i, s := range schemes {
			res, err := battsched.Run(battsched.Config{
				System:        sys.Clone(),
				Processor:     proc,
				DVS:           s.DVS,
				Priority:      s.Priority,
				ReadyPolicy:   s.ReadyPolicy,
				FrequencyMode: battsched.DiscreteFrequency,
				Execution:     battsched.NewUniformExecution(0.2, 1.0, *seed+int64(set)),
				Hyperperiods:  4,
			})
			if err != nil {
				log.Fatal(err)
			}
			if res.DeadlineMisses != 0 {
				log.Fatalf("%s: %d deadline misses", s.Name, res.DeadlineMisses)
			}
			life, err := battsched.BatteryLifetimeOpts(battsched.NewStochasticBattery(), res.Profile,
				battsched.BatterySimulateOptions{MaxTime: 72 * 3600})
			if err != nil {
				log.Fatal(err)
			}
			lifetime[i] += life.LifetimeMinutes()
			charge[i] += life.DeliveredMAh()
			energy[i] += res.EnergyBattery
		}
	}

	fmt.Printf("Scheduling schemes on %d random workloads (%d graphs, %.0f%% utilisation, stochastic battery model)\n\n",
		*sets, *graphs, *utilization*100)
	fmt.Printf("%-8s %-10s %-10s %-14s %12s %12s %14s\n", "Scheme", "DVS", "Priority", "Ready list", "Life (min)", "Charge(mAh)", "Energy (J)")
	n := float64(*sets)
	for i, s := range schemes {
		fmt.Printf("%-8s %-10s %-10s %-14s %12.1f %12.0f %14.3f\n",
			s.Name, s.DVS.Name(), s.Priority.Name(), s.ReadyPolicy.String(),
			lifetime[i]/n, charge[i]/n, energy[i]/n)
	}
	base := lifetime[0]
	fmt.Println()
	for i, s := range schemes {
		fmt.Printf("%-8s lifetime improvement over plain EDF: %+.1f%%\n", s.Name, (lifetime[i]/base-1)*100)
	}
}
