// Battery characterisation: sweep constant loads against every battery model
// and print the load versus delivered-capacity curve referenced in Section 5
// of the paper. Extrapolating the curve to zero load gives the maximum
// capacity (2000 mAh for the modelled AAA NiMH cell); the high-load end
// approaches the charge held in the directly available store.
package main

import (
	"fmt"
	"log"

	"battsched"
)

func main() {
	currents := []float64{0.05, 0.1, 0.2, 0.4, 0.8, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0}
	models := []battsched.BatteryModel{
		battsched.NewStochasticBattery(),
		battsched.NewKiBaM(),
		battsched.NewDiffusionBattery(),
		battsched.NewPeukertBattery(),
	}

	fmt.Println("Delivered capacity (mAh) under constant load — the rate-capacity effect")
	fmt.Printf("%-12s", "load (A)")
	for _, m := range models {
		fmt.Printf(" %12s", m.Name())
	}
	fmt.Println()

	curves := make([][]battsched.CurvePoint, len(models))
	for i, m := range models {
		pts, err := battsched.DeliveredCapacityCurve(m, currents, 72*3600)
		if err != nil {
			log.Fatal(err)
		}
		curves[i] = pts
	}
	for row := range currents {
		fmt.Printf("%-12.2f", currents[row])
		for i := range models {
			fmt.Printf(" %12.0f", curves[i][row].DeliveredMAh)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Lifetime (minutes) under constant load")
	fmt.Printf("%-12s", "load (A)")
	for _, m := range models {
		fmt.Printf(" %12s", m.Name())
	}
	fmt.Println()
	for row := range currents {
		fmt.Printf("%-12.2f", currents[row])
		for i := range models {
			fmt.Printf(" %12.1f", curves[i][row].LifetimeMinutes)
		}
		fmt.Println()
	}
}
