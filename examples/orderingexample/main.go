// Ordering example: the paper's Figure 4 motivational example. Two tasks with
// worst-case requirements 4 and 6 (time units at f_max) share a deadline of
// 10. Depending on how much of the worst case each task actually uses, either
// Shortest-Task-First or Largest-Task-First recovers more slack — while the
// pUBS priority function picks the better order in both cases, matching the
// exhaustive optimum.
package main

import (
	"fmt"
	"log"

	"battsched"
)

const fmax = 1e9

func evaluateCase(name string, actualFrac1, actualFrac2 float64) {
	g := battsched.NewGraph("fig4", 10)
	g.AddNode("task1", 4*fmax) // wc = 4 time units at f_max
	g.AddNode("task2", 6*fmax) // wc = 6 time units at f_max
	params := battsched.OrderingParams{
		Deadline: 10,
		FMax:     fmax,
		Actuals:  []float64{actualFrac1 * 4 * fmax, actualFrac2 * 6 * fmax},
	}

	stfFirst, err := battsched.EvaluateOrder(g, []battsched.NodeID{0, 1}, params)
	if err != nil {
		log.Fatal(err)
	}
	ltfFirst, err := battsched.EvaluateOrder(g, []battsched.NodeID{1, 0}, params)
	if err != nil {
		log.Fatal(err)
	}
	pubs, err := battsched.GreedyOrder(g, battsched.NewPUBS(), params, params.Actuals, nil)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := battsched.OptimalOrder(g, params, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s (actuals %.0f%% and %.0f%% of WCET)\n", name, actualFrac1*100, actualFrac2*100)
	fmt.Printf("  STF order  (task1 first): energy %.3f (x%.3f of optimal)\n", stfFirst.Energy/1e9, stfFirst.Energy/opt.Best.Energy)
	fmt.Printf("  LTF order  (task2 first): energy %.3f (x%.3f of optimal)\n", ltfFirst.Energy/1e9, ltfFirst.Energy/opt.Best.Energy)
	fmt.Printf("  pUBS greedy order %v:  energy %.3f (x%.3f of optimal)\n", pubs.Order, pubs.Energy/1e9, pubs.Energy/opt.Best.Energy)
	fmt.Printf("  optimal order %v\n\n", opt.Best.Order)
}

func main() {
	fmt.Println("Figure 4 of the paper: the best execution order depends on where the slack is.")
	fmt.Println()
	// Case 1: task1 uses 40% of its WCET, task2 uses 60% -> STF recovers more slack.
	evaluateCase("Case 1", 0.4, 0.6)
	// Case 2: task1 uses 60% of its WCET, task2 uses 40% -> LTF recovers more slack.
	evaluateCase("Case 2", 0.6, 0.4)
}
