module battsched

go 1.24
