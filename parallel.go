package battsched

import (
	"context"
	"math/rand"

	"battsched/internal/experiments"
	"battsched/internal/runner"
	"battsched/internal/stats"
)

// Parallel experiment running (see internal/runner and internal/experiments).
//
// Every stochastic sweep in this module runs on a job-grid harness: the
// (set × scheme × sweep-point) grid is enumerated as independent jobs on a
// bounded worker pool, each job derives its random stream from the experiment
// seed and its grid coordinates, and results stream back in job order — so
// sweeps are byte-identical at any worker count without materialising the
// grid.
type (
	// RunnerOptions tune one ParallelMap/RunJobGridStream call: worker-pool
	// size and an optional progress callback.
	RunnerOptions = runner.Options
	// ExperimentOptions are the execution knobs embedded in every experiment
	// configuration: Parallel worker count, Progress callback, and the
	// adaptive-stopping knobs TargetCI (relative Student-t CI95 half-width
	// target for the experiment's key metric) and MaxSets (hard cap on the
	// adaptively grown set count).
	ExperimentOptions = experiments.RunOptions
	// JobGrid maps a multi-dimensional sweep onto flat job indices in
	// row-major order.
	JobGrid = runner.Grid
	// JobPanicError reports a job that panicked inside ParallelMap.
	JobPanicError = runner.PanicError
)

// NewJobGrid returns the grid with the given dimension sizes.
func NewJobGrid(dims ...int) JobGrid { return runner.NewGrid(dims...) }

// ParallelMap executes jobs 0..n-1 on a bounded worker pool and returns their
// results in job-index order; the first job error cancels the rest. Combine
// with DeriveSeed/SeededRNG so each job owns its random stream and the result
// is independent of the worker count.
func ParallelMap[T any](ctx context.Context, n int, opts RunnerOptions, job func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return runner.Run(ctx, n, opts, job)
}

// RunJobGridStream is the streaming variant of ParallelMap: each result is
// delivered to emit in strictly increasing job order as soon as it and every
// lower-indexed job completed, so callers fold results into accumulators
// (see StatsAccumulator) as they arrive instead of holding the whole grid.
// Memory is bounded by a small reorder window; an error returned by emit
// aborts the sweep. Delivery order is deterministic, so folds are
// byte-identical at any worker count.
func RunJobGridStream[T any](ctx context.Context, n int, opts RunnerOptions, job func(ctx context.Context, i int) (T, error), emit func(i int, t T) error) error {
	return runner.RunStream(ctx, n, opts, job, emit)
}

// DeriveSeed derives a well-mixed deterministic seed for the job at the given
// grid coordinates from a base experiment seed.
func DeriveSeed(base int64, coords ...int64) int64 { return runner.SeedFor(base, coords...) }

// SeededRNG returns a fresh generator seeded with DeriveSeed(base, coords...).
func SeededRNG(base int64, coords ...int64) *rand.Rand { return runner.RNG(base, coords...) }

// Scenario-grid sweep (see internal/experiments): the cross product of
// utilisations × battery models × scheduling schemes, the entry point new
// workloads plug into.
type (
	// ScenarioGridConfig parameterises the scenario-grid sweep.
	ScenarioGridConfig = experiments.ScenarioGridConfig
	// ScenarioGridRow is one (utilisation, battery, scheme) cell.
	ScenarioGridRow = experiments.ScenarioGridRow
	// StatsSummary is the aggregate description of one cell metric (the CI95
	// half-width uses Student-t critical values).
	StatsSummary = stats.Summary
	// StatsAccumulator folds observations online (Welford) and merges with
	// other accumulators deterministically — the building block streamed
	// sweeps fold into.
	StatsAccumulator = stats.Accumulator
	// StatsState is the serialisable snapshot of a StatsAccumulator
	// (n/mean/M2/min/max); JSON round-trips are bit-exact, which is what lets
	// experiment shard partials move between processes and merge losslessly.
	StatsState = stats.State
)

// StatsFromState reconstructs an accumulator from exported state; it keeps
// accumulating bit-for-bit as if the original had never been serialised.
func StatsFromState(s StatsState) StatsAccumulator { return stats.FromState(s) }

// DefaultScenarioGridConfig returns a moderate three-utilisation sweep over
// two battery models and all five paper schemes.
func DefaultScenarioGridConfig() ScenarioGridConfig {
	return experiments.DefaultScenarioGridConfig()
}

// RunScenarioGrid sweeps the (utilisation × battery × scheme) grid on the
// parallel runner and reports per-cell charge and lifetime summaries.
func RunScenarioGrid(ctx context.Context, cfg ScenarioGridConfig) ([]ScenarioGridRow, error) {
	return experiments.RunScenarioGrid(ctx, cfg)
}

// FormatScenarioGrid renders scenario-grid rows as a plain-text table.
func FormatScenarioGrid(rows []ScenarioGridRow) string {
	return experiments.FormatScenarioGrid(rows)
}
