// Benchmarks regenerating every table and figure of the paper's evaluation
// (in reduced "quick" form so a -bench=. run stays tractable), plus
// micro-benchmarks of the scheduler, priority functions and battery models.
//
// Full-size reproductions are run with cmd/experiments; see EXPERIMENTS.md
// for the recorded paper-versus-measured numbers.
package battsched_test

import (
	"context"
	"math/rand"
	"testing"

	"battsched"
	"battsched/internal/battery"
	"battsched/internal/battery/diffusion"
	"battsched/internal/battery/kibam"
	"battsched/internal/battery/stochastic"
	"battsched/internal/experiments"
	"battsched/internal/priority"
	"battsched/internal/profile"
)

// BenchmarkTable1 regenerates the paper's Table 1 (energy of Random/LTF/pUBS
// orderings normalised to the exhaustive optimum on single task graphs).
func BenchmarkTable1(b *testing.B) {
	cfg := experiments.QuickTable1Config()
	cfg.Parallel = 1 // measure the sequential path
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable1(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFigure6 regenerates the paper's Figure 6 (energy of ordering
// schemes normalised to the precedence-free near-optimal schedule).
func BenchmarkFigure6(b *testing.B) {
	cfg := experiments.QuickFigure6Config()
	cfg.Parallel = 1 // measure the sequential path
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFigure6(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTable2 regenerates the paper's Table 2 (charge delivered and
// battery lifetime of the five scheduling schemes) on one worker — the
// sequential baseline BenchmarkTable2Parallel is compared against.
func BenchmarkTable2(b *testing.B) {
	cfg := experiments.QuickTable2Config()
	cfg.BatteryName = "kibam"
	cfg.Parallel = 1
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable2(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("unexpected row count")
		}
	}
}

// BenchmarkTable2Parallel runs the same workload on all cores; the ratio to
// BenchmarkTable2 tracks the speedup of the job-grid runner.
func BenchmarkTable2Parallel(b *testing.B) {
	cfg := experiments.QuickTable2Config()
	cfg.BatteryName = "kibam"
	cfg.Parallel = 0 // all cores
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable2(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("unexpected row count")
		}
	}
}

// BenchmarkLoadCapacityCurve regenerates the load versus delivered-capacity
// battery characterisation curve of Section 5.
func BenchmarkLoadCapacityCurve(b *testing.B) {
	cfg := experiments.QuickCurveConfig()
	cfg.Parallel = 1 // measure the sequential path
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunLoadCapacityCurve(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSystem builds a deterministic random workload for scheduler
// micro-benchmarks.
func benchSystem(b *testing.B, graphs int) *battsched.System {
	b.Helper()
	rng := rand.New(rand.NewSource(99))
	sys, err := battsched.GenerateSystem(battsched.DefaultGeneratorConfig(), graphs, 0.7, 1e9, rng)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkSchedulerBAS2 measures one hyperperiod of the full BAS-2
// methodology (laEDF + pUBS over all released graphs, discrete frequencies).
func BenchmarkSchedulerBAS2(b *testing.B) {
	sys := benchSystem(b, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := battsched.Run(battsched.Config{
			System:        sys.Clone(),
			DVS:           battsched.NewLAEDF(),
			Priority:      battsched.NewPUBS(),
			ReadyPolicy:   battsched.AllReleased,
			FrequencyMode: battsched.DiscreteFrequency,
			Execution:     battsched.NewUniformExecution(0.2, 1.0, int64(i)),
			Hyperperiods:  1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.DeadlineMisses != 0 {
			b.Fatal("deadline miss")
		}
	}
}

// BenchmarkSchedulerCCEDF measures one hyperperiod of ccEDF with canonical
// EDF ordering, the simplest DVS baseline.
func BenchmarkSchedulerCCEDF(b *testing.B) {
	sys := benchSystem(b, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := battsched.Run(battsched.Config{
			System:       sys.Clone(),
			DVS:          battsched.NewCCEDF(),
			Priority:     battsched.NewFIFO(),
			Execution:    battsched.NewUniformExecution(0.2, 1.0, int64(i)),
			Hyperperiods: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPUBSPriority measures one pUBS priority evaluation.
func BenchmarkPUBSPriority(b *testing.B) {
	p := priority.NewPUBS()
	ctx := &priority.Context{
		CurrentFrequency: 0.7e9,
		FMax:             1e9,
		FrequencyAfter:   func(c priority.Candidate, x float64) float64 { return 0.6e9 },
	}
	c := priority.Candidate{RemainingWCET: 10e6, EstimatedActual: 6e6, AbsoluteDeadline: 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Priority(c, ctx)
	}
}

// benchProfile is a representative two-level periodic load.
func benchProfile() *profile.Profile {
	p := profile.New()
	p.Append(0.2, 1.2)
	p.Append(0.3, 0.4)
	p.Append(0.5, 0.01)
	return p
}

// BenchmarkKiBaMLifetime measures a full lifetime simulation on the KiBaM
// cell with default options (the analytic fast path; see internal/battery's
// BenchmarkLifetime* for the stepped-versus-analytic comparison).
func BenchmarkKiBaMLifetime(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		if _, err := battery.SimulateUntilExhausted(kibam.Default(), p, battery.SimulateOptions{MaxTime: 72 * 3600}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiffusionLifetime measures a full lifetime simulation on the
// Rakhmatov–Vrudhula diffusion cell (analytic fast path).
func BenchmarkDiffusionLifetime(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		if _, err := battery.SimulateUntilExhausted(diffusion.Default(), p, battery.SimulateOptions{MaxTime: 72 * 3600}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStochasticLifetime measures a full lifetime simulation on the
// stochastic charge-unit cell (expected-value mode; always stepped).
func BenchmarkStochasticLifetime(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		if _, err := battery.SimulateUntilExhausted(stochastic.Default(), p, battery.SimulateOptions{MaxTime: 72 * 3600, MaxStep: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateAblation runs the estimate-quality ablation (how the
// accuracy of the X_k estimates changes the benefit of the pUBS ordering).
func BenchmarkEstimateAblation(b *testing.B) {
	cfg := experiments.QuickEstimateAblationConfig()
	cfg.Parallel = 1 // measure the sequential path
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunEstimateAblation(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("unexpected row count")
		}
	}
}

// BenchmarkAblationReadyPolicy compares the two ready-list policies of the
// paper (BAS-1 most-imminent vs BAS-2 all-released with the feasibility
// check) on the same workload — the design choice Section 4.2 discusses.
func BenchmarkAblationReadyPolicy(b *testing.B) {
	sys := benchSystem(b, 5)
	for _, bench := range []struct {
		name   string
		policy battsched.ReadyPolicy
	}{
		{"most-imminent", battsched.MostImminentOnly},
		{"all-released", battsched.AllReleased},
	} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := battsched.Run(battsched.Config{
					System:        sys.Clone(),
					DVS:           battsched.NewLAEDF(),
					Priority:      battsched.NewPUBS(),
					ReadyPolicy:   bench.policy,
					FrequencyMode: battsched.DiscreteFrequency,
					Execution:     battsched.NewUniformExecution(0.2, 1.0, int64(i)),
					Hyperperiods:  1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.DeadlineMisses != 0 {
					b.Fatal("deadline miss")
				}
			}
		})
	}
}

// BenchmarkAblationQuantization compares the optimal linear-combination
// frequency realisation against naive ceil quantisation — the design choice
// the paper justifies by citing Gaujal/Navet/Walsh.
func BenchmarkAblationQuantization(b *testing.B) {
	sys := benchSystem(b, 5)
	for _, bench := range []struct {
		name string
		mode battsched.FrequencyMode
	}{
		{"linear-combination", battsched.DiscreteFrequency},
		{"ceil", battsched.DiscreteCeilFrequency},
	} {
		b.Run(bench.name, func(b *testing.B) {
			var energy float64
			for i := 0; i < b.N; i++ {
				res, err := battsched.Run(battsched.Config{
					System:        sys.Clone(),
					DVS:           battsched.NewCCEDF(),
					Priority:      battsched.NewPUBS(),
					FrequencyMode: bench.mode,
					Execution:     battsched.NewUniformExecution(0.2, 1.0, 7),
					Hyperperiods:  1,
				})
				if err != nil {
					b.Fatal(err)
				}
				energy += res.EnergyBattery
			}
			b.ReportMetric(energy/float64(b.N), "J/hyperperiod")
		})
	}
}

// BenchmarkOptimalSearch10 measures the exhaustive optimal-order search on a
// 10-node DAG (the Table 1 baseline).
func BenchmarkOptimalSearch10(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g, err := battsched.GenerateGraph(battsched.DefaultGeneratorConfig(), "bench", 10, rng)
	if err != nil {
		b.Fatal(err)
	}
	actuals := make([]float64, g.NumNodes())
	for i := range actuals {
		actuals[i] = 0.5 * g.Nodes[i].WCET
	}
	params := battsched.OrderingParams{Deadline: g.TotalWCET() / (0.7 * 1e9), FMax: 1e9, Actuals: actuals}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := battsched.OptimalOrder(g, params, 0); err != nil {
			b.Fatal(err)
		}
	}
}
