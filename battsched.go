package battsched

import (
	"context"
	"io"
	"math/rand"
	"time"

	"battsched/internal/battery"
	"battsched/internal/battery/diffusion"
	"battsched/internal/battery/kibam"
	"battsched/internal/battery/peukert"
	"battsched/internal/battery/stochastic"
	"battsched/internal/core"
	"battsched/internal/dvs"
	"battsched/internal/experiments"
	"battsched/internal/federation"
	"battsched/internal/optimal"
	"battsched/internal/priority"
	"battsched/internal/processor"
	"battsched/internal/profile"
	"battsched/internal/service"
	"battsched/internal/service/client"
	"battsched/internal/taskgraph"
	"battsched/internal/tgff"
	"battsched/internal/trace"
)

// Workload model types (see internal/taskgraph).
type (
	// Graph is a periodic task graph: a DAG of tasks with a period equal to
	// its relative deadline.
	Graph = taskgraph.Graph
	// Node is one task of a Graph.
	Node = taskgraph.Node
	// NodeID identifies a node within its graph.
	NodeID = taskgraph.NodeID
	// Edge is a precedence constraint between two nodes of a graph.
	Edge = taskgraph.Edge
	// System is the set of task graphs scheduled together.
	System = taskgraph.System
	// ExecutionModel draws the actual execution requirement of node instances.
	ExecutionModel = taskgraph.ExecutionModel
	// UniformExecution draws actual requirements uniformly in a fraction
	// range of the WCET (the paper uses 20–100 %).
	UniformExecution = taskgraph.UniformExecution
	// WorstCaseExecution makes every instance take its full WCET.
	WorstCaseExecution = taskgraph.WorstCaseExecution
	// FixedFractionExecution takes a fixed fraction of the WCET, optionally
	// overridden per node name.
	FixedFractionExecution = taskgraph.FixedFractionExecution
	// RecordedExecution wraps an ExecutionModel, records the draws of one
	// realisation, and replays them bit-exactly — the mechanism for running
	// several schemes on identical actual execution times.
	RecordedExecution = taskgraph.RecordedExecution
)

// NewGraph returns an empty task graph with the given name and period.
func NewGraph(name string, period float64) *Graph { return taskgraph.NewGraph(name, period) }

// NewSystem returns a System containing the given graphs.
func NewSystem(graphs ...*Graph) *System { return taskgraph.NewSystem(graphs...) }

// NewUniformExecution returns the paper's execution model: actual cycles
// drawn uniformly in [minFrac, maxFrac]*WCET.
func NewUniformExecution(minFrac, maxFrac float64, seed int64) *UniformExecution {
	return taskgraph.NewUniformExecution(minFrac, maxFrac, seed)
}

// NewRecordedExecution wraps inner in recording mode: the first simulation
// records every draw, and Replay rewinds so subsequent simulations observe
// the identical realisation regardless of scheme or DVS algorithm.
func NewRecordedExecution(inner ExecutionModel) *RecordedExecution {
	return taskgraph.NewRecordedExecution(inner)
}

// Random workload generation (see internal/tgff).
type (
	// GeneratorConfig controls the random task-graph generator (the in-repo
	// substitute for TGFF).
	GeneratorConfig = tgff.Config
)

// DefaultGeneratorConfig returns the configuration used by the paper's
// experiments (5–15 nodes per graph, uniform WCETs, random dependencies).
func DefaultGeneratorConfig() GeneratorConfig { return tgff.DefaultConfig() }

// GenerateSystem produces numGraphs random task graphs scaled to the given
// worst-case utilisation at fmax.
func GenerateSystem(cfg GeneratorConfig, numGraphs int, utilization, fmax float64, rng *rand.Rand) (*System, error) {
	return tgff.GenerateSystem(cfg, numGraphs, utilization, fmax, rng)
}

// GenerateGraph produces one random task graph with n nodes.
func GenerateGraph(cfg GeneratorConfig, name string, n int, rng *rand.Rand) (*Graph, error) {
	return tgff.GenerateWithNodes(cfg, name, n, rng)
}

// Processor model (see internal/processor).
type (
	// Processor is the DVS processor and power-delivery model.
	Processor = processor.Model
	// OperatingPoint is one supported frequency/voltage pair.
	OperatingPoint = processor.OperatingPoint
)

// DefaultProcessor returns the paper's processor: operating points
// [(0.5 GHz, 3 V), (0.75 GHz, 4 V), (1 GHz, 5 V)] powered from a 1.2 V cell.
func DefaultProcessor() *Processor { return processor.Default() }

// DVS frequency-setting algorithms (see internal/dvs).
type (
	// DVSAlgorithm selects the reference frequency at scheduling decision
	// points.
	DVSAlgorithm = dvs.Algorithm
	// InstanceView is the per-instance summary handed to DVS algorithms.
	InstanceView = dvs.InstanceView
)

// NewNoDVS returns the no-scaling baseline (always f_max while busy).
func NewNoDVS() DVSAlgorithm { return dvs.NewNoDVS() }

// NewStaticEDF returns the static utilisation-based scaling baseline.
func NewStaticEDF() DVSAlgorithm { return dvs.NewStatic() }

// NewCCEDF returns the cycle-conserving EDF DVS algorithm extended to task
// graphs (the paper's Algorithm 1).
func NewCCEDF() DVSAlgorithm { return dvs.NewCCEDF() }

// NewLAEDF returns the look-ahead EDF DVS algorithm extended to task graphs.
func NewLAEDF() DVSAlgorithm { return dvs.NewLAEDF() }

// Priority functions (see internal/priority).
type (
	// PriorityFunction orders the ready list; the scheduler runs the
	// candidate with the smallest value.
	PriorityFunction = priority.Function
	// Candidate is one ready node offered to a priority function.
	Candidate = priority.Candidate
	// PriorityContext carries the scheduler state a priority function sees.
	PriorityContext = priority.Context
	// Estimator predicts actual execution requirements (X_k) for pUBS.
	Estimator = priority.Estimator
	// HistoryEstimator keeps a per-node EWMA of observed actual/WCET ratios.
	HistoryEstimator = priority.HistoryEstimator
)

// NewPUBS returns Gruian's near-optimal pUBS priority function.
func NewPUBS() PriorityFunction { return priority.NewPUBS() }

// NewLTF returns the Largest-Task-First heuristic.
func NewLTF() PriorityFunction { return priority.NewLTF() }

// NewSTF returns the Shortest-Task-First heuristic.
func NewSTF() PriorityFunction { return priority.NewSTF() }

// NewRandomOrder returns the random ordering policy.
func NewRandomOrder() PriorityFunction { return priority.NewRandom() }

// NewFIFO returns the canonical EDF tie-breaking (FIFO) order.
func NewFIFO() PriorityFunction { return priority.NewFIFO() }

// NewHistoryEstimator returns an EWMA-based estimator of actual requirements.
func NewHistoryEstimator(alpha float64) *HistoryEstimator { return priority.NewHistoryEstimator(alpha) }

// Scheduler (see internal/core).
type (
	// Config assembles one scheduling simulation.
	Config = core.Config
	// Result summarises one scheduling simulation.
	Result = core.Result
	// ReadyPolicy selects BAS-1 (MostImminentOnly) or BAS-2 (AllReleased).
	ReadyPolicy = core.ReadyPolicy
	// FrequencyMode selects continuous or discrete frequency realisation.
	FrequencyMode = core.FrequencyMode
	// SimEngine is the reusable scheduling engine: Reset(Config) then Run,
	// repeatedly, reusing all scratch state — near zero allocations per run.
	// One-shot Run is the convenience wrapper over a throwaway SimEngine.
	SimEngine = core.Engine
)

// Ready-list policies and frequency modes.
const (
	// MostImminentOnly admits ready nodes of the earliest-deadline graph only
	// (BAS-1).
	MostImminentOnly = core.MostImminentOnly
	// AllReleased admits ready nodes of every released graph, guarded by the
	// feasibility check (BAS-2).
	AllReleased = core.AllReleased
	// ContinuousFrequency runs exactly at fref (idealised processor).
	ContinuousFrequency = core.ContinuousFrequency
	// DiscreteFrequency realises fref as a linear combination of the two
	// adjacent supported operating points.
	DiscreteFrequency = core.DiscreteFrequency
	// DiscreteCeilFrequency realises fref at the smallest supported operating
	// point above it (naive quantisation, for ablation studies).
	DiscreteCeilFrequency = core.DiscreteCeilFrequency
)

// Run executes one scheduling simulation.
func Run(cfg Config) (*Result, error) { return core.Run(cfg) }

// NewSimEngine returns an empty reusable engine. Reset it with a Config
// before each Run; results are byte-identical to one-shot Run with the same
// Config. See internal/core.Engine for the reuse and aliasing contract.
func NewSimEngine() *SimEngine { return core.NewEngine() }

// Execution traces and load profiles.
type (
	// Trace is the execution trace (Gantt) of a simulation.
	Trace = trace.Trace
	// TraceSlice is one interval of a Trace.
	TraceSlice = trace.Slice
	// GanttOptions control ASCII rendering of a Trace.
	GanttOptions = trace.GanttOptions
	// Profile is a piecewise-constant battery load-current profile.
	Profile = profile.Profile
	// ProfileSegment is one constant-current interval of a Profile.
	ProfileSegment = profile.Segment
)

// Simulation observers (see internal/core). The engine emits one
// constant-state segment per interval of the simulation; Config.Observer
// selects the sink that receives them. With a nil Observer the engine
// records a full profile + trace into the Result (the historical behaviour);
// experiment sweeps pass cheaper sinks. Energy totals never depend on the
// observer.
type (
	// SegmentSink observes the engine's emitted segments.
	SegmentSink = core.SegmentSink
	// EngineSegment is one constant-state interval of a simulation.
	EngineSegment = core.Segment
	// SimProfileRecorder records only the battery load-current profile.
	SimProfileRecorder = core.ProfileRecorder
	// SimRecorder records the full profile + execution trace.
	SimRecorder = core.Recorder
)

// DiscardSegments is the no-op observer: no profile or trace is recorded
// (Result.Profile and Result.Trace stay nil); scheduling statistics and
// energy totals are still computed.
var DiscardSegments = core.Discard

// NewSimProfileRecorder returns a profile-only observer; the engine attaches
// its profile to Result.Profile.
func NewSimProfileRecorder() *SimProfileRecorder { return core.NewProfileRecorder() }

// NewSimRecorder returns the full profile + trace observer (the default when
// Config.Observer is nil).
func NewSimRecorder() *SimRecorder { return core.NewRecorder() }

// Battery models (see internal/battery and its sub-packages).
type (
	// BatteryModel is the interface implemented by all battery models.
	BatteryModel = battery.Model
	// BatterySegmentDrainer is the optional analytic fast-path interface:
	// models implementing it (KiBaM, diffusion, Peukert) are simulated one
	// whole constant-current segment at a time with closed-form exhaustion
	// root-finding instead of MaxStep substeps.
	BatterySegmentDrainer = battery.SegmentDrainer
	// BatteryRepetitionOperator advances a model by whole profile
	// repetitions through a precomputed affine transfer operator.
	BatteryRepetitionOperator = battery.RepetitionOperator
	// BatteryAnalyticGater is the optional per-instance gate on the analytic
	// path (the stochastic model's Monte Carlo mode keeps slot stepping).
	BatteryAnalyticGater = battery.AnalyticGater
	// BatteryResult is the outcome of a battery lifetime simulation.
	BatteryResult = battery.Result
	// BatterySimulateOptions tune the battery simulation driver.
	BatterySimulateOptions = battery.SimulateOptions
	// CurvePoint is one point of a load versus delivered-capacity curve.
	CurvePoint = battery.CurvePoint
)

// NewKiBaM returns the default Kinetic Battery Model cell (1.2 V, 2000 mAh
// maximum capacity, AAA NiMH calibration).
func NewKiBaM() BatteryModel { return kibam.Default() }

// NewDiffusionBattery returns the default Rakhmatov–Vrudhula diffusion cell.
func NewDiffusionBattery() BatteryModel { return diffusion.Default() }

// NewStochasticBattery returns the default stochastic charge-unit cell (the
// model family the paper's own evaluation uses), in deterministic
// expected-value mode.
func NewStochasticBattery() BatteryModel { return stochastic.Default() }

// NewPeukertBattery returns the default Peukert's-law cell.
func NewPeukertBattery() BatteryModel { return peukert.Default() }

// NewBatteryModel returns a fresh instance of the battery model registered
// under name ("stochastic", "kibam", "diffusion", "peukert", or any model a
// sub-package registered with the battery registry). Unknown names return an
// error listing the registered names.
func NewBatteryModel(name string) (BatteryModel, error) { return battery.New(name) }

// BatteryModelNames returns the registered battery model names in sorted
// order.
func BatteryModelNames() []string { return battery.Names() }

// BatteryLifetime plays the profile periodically against the model until the
// battery is exhausted and reports lifetime and delivered charge. Models
// implementing BatterySegmentDrainer take the analytic fast path (whole
// segments, per-repetition transfer operators, exhaustion root-finding);
// since the stochastic fast path that is every registered model in its
// default mode, with only Monte Carlo instances stepped at 1 s.
func BatteryLifetime(m BatteryModel, p *Profile) (BatteryResult, error) {
	return battery.SimulateUntilExhausted(m, p, battery.SimulateOptions{})
}

// BatteryLifetimeOpts is BatteryLifetime with explicit simulation options; a
// positive MaxStep forces the uniform-stepping path for every model.
func BatteryLifetimeOpts(m BatteryModel, p *Profile, opts BatterySimulateOptions) (BatteryResult, error) {
	return battery.SimulateUntilExhausted(m, p, opts)
}

// BatteryLifetimeBatch evaluates N battery models against one load profile in
// a single pass over its segment stream, returning one result per model in
// input order. Results are bit-identical to N BatteryLifetimeOpts calls;
// stepped models share one slot clock and drop out of the pass as they die,
// so evaluating a whole model axis costs one profile replay instead of N.
func BatteryLifetimeBatch(models []BatteryModel, p *Profile, opts BatterySimulateOptions) ([]BatteryResult, error) {
	return battery.SimulateBatch(models, p, opts)
}

// DeliveredCapacityCurve sweeps constant loads and reports the delivered
// capacity of the model at each (the battery characterisation curve of §5).
func DeliveredCapacityCurve(m BatteryModel, currents []float64, maxTime float64) ([]CurvePoint, error) {
	return battery.DeliveredCapacityCurve(m, currents, maxTime)
}

// Single-graph ordering analysis (see internal/optimal) — the machinery
// behind the paper's Table 1.
type (
	// OrderingParams configure the single-graph greedy-rescaling model.
	OrderingParams = optimal.Params
	// OrderingEvaluation is the outcome of executing one order.
	OrderingEvaluation = optimal.Evaluation
	// OrderingSearchResult is the outcome of the exhaustive optimal search.
	OrderingSearchResult = optimal.SearchResult
)

// EvaluateOrder simulates one execution order of a single graph under the
// greedy speed-rescaling model.
func EvaluateOrder(g *Graph, order []NodeID, p OrderingParams) (OrderingEvaluation, error) {
	return optimal.EvaluateOrder(g, order, p)
}

// GreedyOrder builds and evaluates an order with the given priority function.
func GreedyOrder(g *Graph, prio PriorityFunction, p OrderingParams, estimates []float64, rng *rand.Rand) (OrderingEvaluation, error) {
	return optimal.GreedyOrder(g, prio, p, estimates, rng)
}

// OptimalOrder finds the energy-optimal linear extension by exhaustive search
// with branch-and-bound (maxExpansions 0 selects the default budget).
func OptimalOrder(g *Graph, p OrderingParams, maxExpansions int) (OrderingSearchResult, error) {
	return optimal.OptimalOrder(g, p, maxExpansions)
}

// Scheme bundles the DVS algorithm, priority function and ready-list policy
// that define one of the scheduling schemes compared in the paper's Table 2.
type Scheme struct {
	// Name is the scheme's label ("BAS-2", "laEDF", ...).
	Name string
	// DVS selects the reference frequency.
	DVS DVSAlgorithm
	// Priority orders the ready list.
	Priority PriorityFunction
	// ReadyPolicy selects the candidate admission rule.
	ReadyPolicy ReadyPolicy
}

// PaperSchemes returns the five scheduling schemes of the paper's Table 2 in
// the paper's order: EDF without DVS, cycle-conserving ccEDF and look-ahead
// laEDF with random ordering, and the Battery-Aware Scheduling schemes BAS-1
// and BAS-2.
func PaperSchemes() []Scheme {
	return []Scheme{
		{Name: "EDF", DVS: NewNoDVS(), Priority: NewRandomOrder(), ReadyPolicy: MostImminentOnly},
		{Name: "ccEDF", DVS: NewCCEDF(), Priority: NewRandomOrder(), ReadyPolicy: MostImminentOnly},
		{Name: "laEDF", DVS: NewLAEDF(), Priority: NewRandomOrder(), ReadyPolicy: MostImminentOnly},
		{Name: "BAS-1", DVS: NewLAEDF(), Priority: NewPUBS(), ReadyPolicy: MostImminentOnly},
		{Name: "BAS-2", DVS: NewLAEDF(), Priority: NewPUBS(), ReadyPolicy: AllReleased},
	}
}

// BAS1 returns the paper's BAS-1 scheme (laEDF + pUBS over the most imminent
// task graph).
func BAS1() Scheme { return PaperSchemes()[3] }

// BAS2 returns the paper's BAS-2 scheme (laEDF + pUBS over all released task
// graphs with the feasibility check).
func BAS2() Scheme { return PaperSchemes()[4] }

// MAh converts coulombs to milliampere-hours.
func MAh(coulombs float64) float64 { return battery.MAh(coulombs) }

// Coulombs converts milliampere-hours to coulombs.
func Coulombs(mAh float64) float64 { return battery.Coulombs(mAh) }

// Unified experiment API (see internal/experiments): every registered
// experiment takes one declarative ExperimentSpec and returns one structured
// ExperimentReport — named rows of metric cells backed by serialisable
// accumulator state — from which the paper's plain-text tables render
// byte-identically and which shard partials merge through.
type (
	// ExperimentSpec is the declarative input of a registered experiment.
	ExperimentSpec = experiments.Spec
	// ExperimentReport is the structured result of an experiment run.
	ExperimentReport = experiments.Report
	// ExperimentRow is one named row of an ExperimentReport.
	ExperimentRow = experiments.ReportRow
	// ExperimentCell is one metric cell of an ExperimentRow.
	ExperimentCell = experiments.Cell
	// ExperimentDefinition describes one registered experiment.
	ExperimentDefinition = experiments.Definition
	// ExperimentShard selects one shard of a multi-process partition of an
	// experiment's absolute set indices.
	ExperimentShard = experiments.Shard
	// ExperimentShardInfo identifies one shard partial inside a Report.
	ExperimentShardInfo = experiments.ShardInfo
)

// RunExperiment executes the registered experiment (see ExperimentNames) with
// the given spec and returns its structured Report.
func RunExperiment(ctx context.Context, name string, spec ExperimentSpec) (*ExperimentReport, error) {
	return experiments.Run(ctx, name, spec)
}

// ExperimentNames returns the registered experiment names in sorted order.
func ExperimentNames() []string { return experiments.Names() }

// LookupExperiment resolves a registered experiment's definition; unknown
// names return an error listing the registered names.
func LookupExperiment(name string) (ExperimentDefinition, error) { return experiments.Lookup(name) }

// MergeExperimentReports combines the shard partials of one experiment run
// (in any order) into the report of the complete run. Per-set cells merge
// exactly by replaying their retained samples in absolute set order; cells
// without samples (the scenario grid's chunk merges) combine their Welford
// states, which may differ from the single-process values by rounding error
// only.
func MergeExperimentReports(parts []*ExperimentReport) (*ExperimentReport, error) {
	return experiments.MergeReports(parts)
}

// FormatExperimentReport renders a report as its experiment's plain-text
// table, byte-identical to the unsharded historical output.
func FormatExperimentReport(r *ExperimentReport) (string, error) {
	return experiments.FormatReport(r)
}

// ExperimentFooter renders the summary line cmd/experiments prints after each
// table (sample counts and wall-clock time).
func ExperimentFooter(r *ExperimentReport, elapsed time.Duration) string {
	return experiments.Footer(r, elapsed)
}

// WriteExperimentReports writes reports as the versioned JSON artifact
// cmd/experiments emits with -o.
func WriteExperimentReports(w io.Writer, reports []*ExperimentReport) error {
	return experiments.WriteArtifact(w, reports)
}

// ReadExperimentReports reads a JSON artifact written by
// WriteExperimentReports, validating its schema version.
func ReadExperimentReports(r io.Reader) ([]*ExperimentReport, error) {
	return experiments.ReadArtifact(r)
}

// ParseExperimentShard parses the CLI shard form "i/n" ("" is unsharded).
func ParseExperimentShard(s string) (ExperimentShard, error) { return experiments.ParseShard(s) }

// CanonicalExperimentSpec returns the stable field-ordered encoding of one
// (experiment, Spec) pair: exactly the inputs that determine the report
// bytes, with default-equivalent values normalised and execution-only knobs
// (parallelism, progress, shard selection) excluded.
func CanonicalExperimentSpec(name string, spec ExperimentSpec) string {
	return experiments.CanonicalSpec(name, spec)
}

// ExperimentSpecHash returns the hex SHA-256 of CanonicalExperimentSpec: the
// deterministic content address under which the experiment service caches the
// complete run's report artifact.
func ExperimentSpecHash(name string, spec ExperimentSpec) string {
	return experiments.SpecHash(name, spec)
}

// ValidateExperimentShardCoverage checks that reports form a complete,
// non-overlapping shard partition of one experiment run, naming missing and
// duplicated partials (the guard MergeExperimentReports applies before
// merging).
func ValidateExperimentShardCoverage(parts []*ExperimentReport) error {
	return experiments.ValidateShardCoverage(parts)
}

// Experiment service (see internal/service and cmd/battschedd): a
// long-running HTTP daemon over the experiment registry with an asynchronous
// bounded job queue, server-side shard fan-out, and a content-addressed
// report cache; and its typed client. Artifacts fetched from a daemon are
// byte-identical to the files the equivalent local `cmd/experiments run -o`
// writes.
type (
	// ExperimentService is the daemon core: construct with
	// NewExperimentService, expose over HTTP with its Handler method, stop
	// with Close.
	ExperimentService = service.Server
	// ExperimentServiceConfig tunes one daemon (workers, queue bound, cache).
	ExperimentServiceConfig = service.Config
	// ExperimentServiceClient is the typed client of a running daemon.
	ExperimentServiceClient = client.Client
	// ServiceJobRequest is one job submission (experiment, spec, shards).
	ServiceJobRequest = service.JobRequest
	// ServiceJobStatus is a job's state and per-shard progress.
	ServiceJobStatus = service.JobStatus
	// ServiceSpecRequest is the JSON wire form of an ExperimentSpec.
	ServiceSpecRequest = service.SpecRequest
	// ServiceHealth is the daemon's /healthz snapshot.
	ServiceHealth = service.Health
)

// NewExperimentService constructs a daemon and starts its worker pool.
func NewExperimentService(cfg ExperimentServiceConfig) (*ExperimentService, error) {
	return service.New(cfg)
}

// NewExperimentServiceClient returns a client for the daemon at baseURL
// (e.g. "http://127.0.0.1:8344").
func NewExperimentServiceClient(baseURL string) *ExperimentServiceClient {
	return client.New(baseURL)
}

// ServiceSpecRequestFrom converts an ExperimentSpec into its wire form,
// dropping the execution-only knobs the daemon owns.
func ServiceSpecRequestFrom(spec ExperimentSpec) ServiceSpecRequest {
	return service.SpecRequestFrom(spec)
}

// Federation (see internal/federation and `cmd/battschedd -coordinator`): a
// coordinator that serves the same job API but executes nothing itself,
// dispatching shard units across a fleet of remote daemons under
// time-bounded leases — dead workers re-dispatch, stragglers run
// speculatively (first completion wins), partials merge incrementally, and
// the merged artifact matches the local run byte for byte.
type (
	// FederationCoordinator is the fleet coordinator: construct with
	// NewFederationCoordinator, expose over HTTP with its Handler method,
	// stop with Close. ExperimentServiceClient drives it unchanged.
	FederationCoordinator = federation.Coordinator
	// FederationConfig tunes one coordinator (fleet URLs, lease and
	// heartbeat periods, straggler factor, cache/journal directory).
	FederationConfig = federation.Config
	// FederationWorkerStatus is one registry entry from the coordinator's
	// /v1/workers listing (URL, liveness, slots, active leases).
	FederationWorkerStatus = federation.WorkerStatus
	// ServiceFleetHealth is the fleet section of a coordinator's /healthz
	// snapshot (live workers, queued/leased units, re-dispatch counters).
	ServiceFleetHealth = service.FleetHealth
)

// NewFederationCoordinator constructs a coordinator over cfg.Workers and
// starts its heartbeat, dispatch and lease-monitor loops.
func NewFederationCoordinator(cfg FederationConfig) (*FederationCoordinator, error) {
	return federation.New(cfg)
}
